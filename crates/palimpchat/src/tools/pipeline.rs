//! Pipeline-building tools: `add_filter`, `add_convert`, `set_policy`,
//! `execute_pipeline`, `reset_pipeline`.

use crate::codegen::pipeline_code;
use crate::session::SessionHandle;
use archytas::tool::{ArgKind, ArgSpec, FnTool, Tool, ToolArgs, ToolOutput, ToolSpec};
use archytas::ArchytasError;
use pz_core::prelude::*;
use serde_json::json;
use std::sync::Arc;

fn tool_err(tool: &str, e: impl std::fmt::Display) -> ArchytasError {
    ArchytasError::ToolFailed {
        tool: tool.into(),
        reason: e.to_string(),
    }
}

/// `add_filter`: append a natural-language filter to the pipeline.
pub fn add_filter_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "add_filter",
        "Add a filter step to the pipeline that keeps only the records \
         satisfying a natural language condition. Use when the user is \
         interested in a subset of the data, wants to keep only certain \
         records, or describes a topic the records must be about.",
    )
    .with_arg(ArgSpec::new(
        "predicate",
        ArgKind::Str,
        "The natural language condition",
    ))
    .with_example("keep only the papers about colorectal cancer")
    .with_example("filter for emails discussing the merger");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let predicate = args["predicate"].as_str().unwrap_or_default().to_string();
        if predicate.trim().is_empty() {
            return Err(tool_err("add_filter", "empty predicate"));
        }
        let mut state = session.lock();
        state.pending_ops.push(LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage(predicate.clone()),
        });
        state
            .notebook
            .push_code(format!("dataset = dataset.filter(\"{predicate}\")"));
        Ok(ToolOutput::text(format!("Added filter: \"{predicate}\"."))
            .with_data(json!({ "predicate": predicate })))
    }))
}

/// `add_convert`: append a schema conversion using a previously created
/// schema.
pub fn add_convert_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "add_convert",
        "Add a convert step that transforms records into a previously \
         created extraction schema, computing the missing fields with an \
         LLM. Use after create_schema when the user wants to extract \
         structured fields from the records. Cardinality 'many' means one \
         record can yield several extracted objects.",
    )
    .with_arg(ArgSpec::new(
        "schema_name",
        ArgKind::Str,
        "Schema created earlier",
    ))
    .with_arg(
        ArgSpec::new(
            "cardinality",
            ArgKind::Str,
            "'one' or 'many' outputs per record",
        )
        .optional(),
    )
    .with_example("apply the extraction schema to the filtered papers");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let name = args["schema_name"].as_str().unwrap_or_default().to_string();
        let mut state = session.lock();
        let schema = state.schemas.get(&name).cloned().ok_or_else(|| {
            tool_err(
                "add_convert",
                format!("unknown schema '{name}' — call create_schema first"),
            )
        })?;
        let cardinality = match args.get("cardinality").and_then(|v| v.as_str()) {
            Some("one") => Cardinality::OneToOne,
            _ => Cardinality::OneToMany,
        };
        let description = schema.description.clone();
        state.pending_ops.push(LogicalOp::Convert {
            target: schema,
            cardinality,
            description,
        });
        let card = if cardinality == Cardinality::OneToMany {
            "ONE_TO_MANY"
        } else {
            "ONE_TO_ONE"
        };
        state.notebook.push_code(format!(
            "dataset = dataset.convert({name}, cardinality=pz.Cardinality.{card})"
        ));
        Ok(ToolOutput::text(format!(
            "Added convert to schema '{name}' (cardinality {card})."
        ))
        .with_data(json!({ "schema": name, "cardinality": card })))
    }))
}

/// `add_retrieve`: semantic top-k narrowing before expensive operators.
pub fn add_retrieve_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "add_retrieve",
        "Add a retrieval step that keeps only the k records most similar to          a natural language query, using vector search. Use when the user          asks for the top results, the most relevant or most similar          records, before running expensive filters.",
    )
    .with_arg(ArgSpec::new("query", ArgKind::Str, "What to search for"))
    .with_arg(ArgSpec::new("k", ArgKind::Int, "How many records to keep").optional())
    .with_example("find the 5 most relevant papers about gene therapy");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let query = args["query"].as_str().unwrap_or_default().to_string();
        if query.trim().is_empty() {
            return Err(tool_err("add_retrieve", "empty query"));
        }
        let k = args
            .get("k")
            .and_then(|v| v.as_i64())
            .map(|n| n.clamp(1, 1000) as usize)
            .unwrap_or(5);
        let mut state = session.lock();
        state.pending_ops.push(LogicalOp::Retrieve {
            query: query.clone(),
            k,
        });
        state
            .notebook
            .push_code(format!("dataset = dataset.retrieve(\"{query}\", k={k})"));
        Ok(ToolOutput::text(format!(
            "Added retrieval of the top {k} records for \"{query}\"."
        ))
        .with_data(json!({ "query": query, "k": k })))
    }))
}

/// `add_limit`: keep only the first n records.
pub fn add_limit_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "add_limit",
        "Add a limit step that keeps only the first n records of the          pipeline. Use when the user wants a sample, a preview, or caps the          number of records to process.",
    )
    .with_arg(ArgSpec::new("n", ArgKind::Int, "How many records to keep"))
    .with_example("only process the first 3 papers");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let n = args
            .get("n")
            .and_then(|v| v.as_i64())
            .filter(|n| *n > 0)
            .ok_or_else(|| tool_err("add_limit", "limit must be a positive number"))?
            as usize;
        let mut state = session.lock();
        state.pending_ops.push(LogicalOp::Limit { n });
        state
            .notebook
            .push_code(format!("dataset = dataset.limit({n})"));
        Ok(ToolOutput::text(format!("Added a limit of {n} record(s)."))
            .with_data(json!({ "n": n })))
    }))
}

/// `add_classify`: semantic categorization into a fixed label set.
pub fn add_classify_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "add_classify",
        "Add a classification step that assigns each record one label from \
         a fixed set, written into a new field. Nothing is dropped. Use \
         when the user wants to categorize, label, tag or bucket the \
         records into named groups.",
    )
    .with_arg(ArgSpec::new(
        "labels",
        ArgKind::StrList,
        "The candidate labels",
    ))
    .with_arg(ArgSpec::new("output_field", ArgKind::Str, "Field to store the label in").optional())
    .with_example("categorize the emails into merger business and office chatter");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let labels: Vec<String> = args["labels"]
            .as_array()
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default();
        if labels.len() < 2 {
            return Err(tool_err("add_classify", "need at least two labels"));
        }
        let output_field = args
            .get("output_field")
            .and_then(|v| v.as_str())
            .unwrap_or("category")
            .to_string();
        let mut state = session.lock();
        state.pending_ops.push(LogicalOp::Classify {
            labels: labels.clone(),
            output_field: output_field.clone(),
        });
        state.notebook.push_code(format!(
            "dataset = dataset.sem_classify({labels:?}, output=\"{output_field}\")"
        ));
        Ok(ToolOutput::text(format!(
            "Added classification into [{}] stored in '{output_field}'.",
            labels.join(", ")
        ))
        .with_data(json!({ "labels": labels, "output_field": output_field })))
    }))
}

/// `set_policy`: choose the optimization goal before execution.
pub fn set_policy_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "set_policy",
        "Set the optimization goal used when the pipeline runs: 'max_quality' \
         for the best output quality, 'min_cost' for the cheapest execution, \
         'min_time' for the fastest. An optional budget turns it into a \
         constrained policy (max quality under a cost or time budget).",
    )
    .with_arg(ArgSpec::new(
        "policy",
        ArgKind::Str,
        "max_quality | min_cost | min_time",
    ))
    .with_arg(ArgSpec::new("cost_budget", ArgKind::Float, "Max dollars to spend").optional())
    .with_arg(ArgSpec::new("time_budget", ArgKind::Float, "Max seconds to run").optional())
    .with_example("optimize for maximum quality")
    .with_example("minimize the cost no matter the quality");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let p = args["policy"]
            .as_str()
            .unwrap_or_default()
            .to_ascii_lowercase();
        let cost_budget = args.get("cost_budget").and_then(|v| v.as_f64());
        let time_budget = args.get("time_budget").and_then(|v| v.as_f64());
        let policy = match (p.as_str(), cost_budget, time_budget) {
            (s, Some(b), _) if s.contains("quality") => Policy::MaxQualityAtCost(b),
            (s, _, Some(b)) if s.contains("quality") => Policy::MaxQualityAtTime(b),
            (s, _, _) if s.contains("quality") => Policy::MaxQuality,
            (s, _, _) if s.contains("cost") => Policy::MinCost,
            (s, _, _) if s.contains("time") || s.contains("runtime") || s.contains("fast") => {
                Policy::MinTime
            }
            _ => {
                return Err(tool_err(
                    "set_policy",
                    format!("unknown policy '{p}'; expected max_quality, min_cost or min_time"),
                ))
            }
        };
        let mut state = session.lock();
        let name = policy.name();
        state.policy = policy;
        Ok(
            ToolOutput::text(format!("Optimization policy set to {name}."))
                .with_data(json!({ "policy": name })),
        )
    }))
}

/// `execute_pipeline`: optimize and run the pipeline built so far.
pub fn execute_pipeline_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "execute_pipeline",
        "Optimize and run the pipeline that has been built so far. \
         Palimpzest enumerates the physical plans, picks the best one under \
         the current optimization policy, executes it and reports the output \
         count, runtime and cost. Use when the user asks to run, execute or \
         process the workload.",
    )
    .with_arg(ArgSpec::new("workers", ArgKind::Int, "Parallel workers").optional())
    .with_arg(
        ArgSpec::new(
            "parallelism",
            ArgKind::Int,
            "Streaming worker-pool size per stage",
        )
        .optional(),
    )
    .with_example("run the pipeline now");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let mut state = session.lock();
        let plan = state
            .current_plan()
            .map_err(|e| tool_err("execute_pipeline", e))?;
        let workers = args
            .get("workers")
            .and_then(|v| v.as_i64())
            .map(|n| n.clamp(1, 64) as usize)
            .unwrap_or(state.workers);
        let parallelism = args
            .get("parallelism")
            .and_then(|v| v.as_i64())
            .map(|n| n.clamp(1, 64) as usize)
            .unwrap_or(state.ctx.parallelism);
        let policy = state.policy.clone();
        // The session's `:exec` switch decides materializing vs
        // streaming. `workers` partitions a materializing run;
        // `parallelism` sizes each streaming stage's worker pool;
        // `:adaptive` arms runtime plan repair; `:watch` arms the
        // incremental memo so re-runs re-bill only changed records.
        let mut config = ExecutionConfig::parallel(workers)
            .with_mode(state.ctx.exec_mode)
            .with_parallelism(parallelism)
            .with_adaptive(state.ctx.adaptive);
        if state.ctx.incremental.is_some() {
            config = config.with_incremental();
        }
        let outcome = execute(&state.ctx, &plan, &policy, config)
            .map_err(|e| tool_err("execute_pipeline", e))?;
        let mut summary = format!(
            "Executed plan [{}] under {}: {} output record(s), {:.1}s runtime (virtual), ${:.4} cost, {} LLM call(s).",
            outcome.chosen_plan.describe(),
            policy.name(),
            outcome.records.len(),
            outcome.stats.total_time_secs,
            outcome.stats.total_cost_usd,
            outcome.stats.total_llm_calls,
        );
        for d in &outcome.stats.degraded {
            summary.push_str(&format!(
                " NOTE: {} failed over {} -> {} ({}, {} record(s), est. quality {:+.2}).",
                d.operator,
                d.from_model,
                d.to_model,
                d.reason,
                d.records_affected,
                d.est_quality_delta,
            ));
        }
        for r in &outcome.stats.adaptive {
            summary.push_str(&format!(
                " NOTE: adaptive replan swapped {} from {} to {} ({}: {:.2} >= {:.2}, {} record(s) remaining).",
                r.operator,
                r.from_model,
                r.to_model,
                r.trigger,
                r.observed_ratio,
                r.threshold,
                r.records_remaining,
            ));
        }
        if outcome.stats.memo_hits > 0 {
            summary.push_str(&format!(
                " NOTE: incremental re-run — {} memoized operator verdict(s) replayed; only the delta was re-billed.",
                outcome.stats.memo_hits,
            ));
        }
        if outcome.stats.deadline_exceeded {
            summary.push_str(" NOTE: the execution deadline elapsed — results are partial.");
        }
        state.notebook.push_code(pipeline_code(&plan, &policy));
        state.notebook.push_output(outcome.stats.render_table());
        // With the profiler armed (REPL `:profile on`), attach the
        // per-stage attribution table and the estimate-vs-observed drift
        // to the notebook so the exported artifact carries them.
        let mut profiled = false;
        if state.ctx.tracer.profiling_enabled() {
            if let Some(profile) = pz_obs::profile_plan(&state.ctx.tracer.snapshot()) {
                profiled = true;
                state.notebook.push_output(profile.render());
            }
            if let Some(drift) = outcome.drift_report() {
                state.notebook.push_output(drift.render_table());
            }
        }
        let data = json!({
            "records": outcome.records.len(),
            "cost_usd": outcome.stats.total_cost_usd,
            "time_secs": outcome.stats.total_time_secs,
            "plan": outcome.chosen_plan.describe(),
            "degraded": outcome.stats.degraded.len(),
            "replanned": outcome.stats.adaptive.len(),
            "memo_replays": outcome.stats.memo_hits,
            "deadline_exceeded": outcome.stats.deadline_exceeded,
            "profiled": profiled,
        });
        state.last_outcome = Some(outcome);
        Ok(ToolOutput::text(summary).with_data(data))
    }))
}

/// `reset_pipeline`: discard the pipeline under construction.
pub fn reset_pipeline_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "reset_pipeline",
        "Discard the pipeline steps built so far and start over (keeps the \
         registered dataset and the created schemas). Use when the user \
         wants to start again, clear the pipeline, or undo the steps.",
    )
    .with_example("start over with a clean pipeline");
    Arc::new(FnTool::new(spec, move |_args: &ToolArgs| {
        let mut state = session.lock();
        state.reset_pipeline();
        Ok(ToolOutput::text(
            "Pipeline cleared; dataset and schemas kept.",
        ))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::new_session;
    use crate::tools::{create_schema_tool, register_dataset_tool};

    fn args(v: serde_json::Value) -> ToolArgs {
        v.as_object().unwrap().clone()
    }

    fn prepared_session() -> SessionHandle {
        let session = new_session();
        register_dataset_tool(session.clone())
            .invoke(&args(json!({"source": "scientific"})))
            .unwrap();
        create_schema_tool(session.clone())
            .invoke(&args(json!({
                "schema_name": "ClinicalData",
                "schema_description": "Datasets used in papers",
                "field_names": ["name", "description", "url"],
                "field_descriptions": [
                    "The name of the clinical data dataset",
                    "A short description of the content of the dataset",
                    "The public URL where the dataset can be accessed"
                ]
            })))
            .unwrap();
        session
    }

    #[test]
    fn filter_then_convert_builds_plan() {
        let session = prepared_session();
        add_filter_tool(session.clone())
            .invoke(&args(
                json!({"predicate": "The papers are about colorectal cancer"}),
            ))
            .unwrap();
        add_convert_tool(session.clone())
            .invoke(&args(
                json!({"schema_name": "ClinicalData", "cardinality": "many"}),
            ))
            .unwrap();
        let state = session.lock();
        let plan = state.current_plan().unwrap();
        assert_eq!(plan.ops.len(), 3);
        assert_eq!(plan.semantic_op_count(), 2);
    }

    #[test]
    fn convert_requires_known_schema() {
        let session = prepared_session();
        let err = add_convert_tool(session)
            .invoke(&args(json!({"schema_name": "Ghost"})))
            .unwrap_err();
        assert!(err.to_string().contains("create_schema first"));
    }

    #[test]
    fn empty_predicate_rejected() {
        let session = prepared_session();
        assert!(add_filter_tool(session)
            .invoke(&args(json!({"predicate": "  "})))
            .is_err());
    }

    #[test]
    fn policy_variants() {
        let session = new_session();
        let tool = set_policy_tool(session.clone());
        tool.invoke(&args(json!({"policy": "min_cost"}))).unwrap();
        assert_eq!(session.lock().policy, Policy::MinCost);
        tool.invoke(&args(json!({"policy": "minimum runtime"})))
            .unwrap();
        assert_eq!(session.lock().policy, Policy::MinTime);
        tool.invoke(&args(json!({"policy": "max_quality", "cost_budget": 0.5})))
            .unwrap();
        assert_eq!(session.lock().policy, Policy::MaxQualityAtCost(0.5));
        assert!(tool.invoke(&args(json!({"policy": "fluffy"}))).is_err());
    }

    #[test]
    fn execute_end_to_end() {
        let session = prepared_session();
        add_filter_tool(session.clone())
            .invoke(&args(
                json!({"predicate": "The papers are about colorectal cancer"}),
            ))
            .unwrap();
        add_convert_tool(session.clone())
            .invoke(&args(json!({"schema_name": "ClinicalData"})))
            .unwrap();
        let out = execute_pipeline_tool(session.clone())
            .invoke(&args(json!({})))
            .unwrap();
        assert!(out.text.contains("output record(s)"), "{}", out.text);
        assert!(out.data["cost_usd"].as_f64().unwrap() > 0.0);
        let state = session.lock();
        let outcome = state.last_outcome.as_ref().unwrap();
        assert!(!outcome.records.is_empty());
        // The notebook got the Figure 6 code and the Figure 5 output.
        assert!(state
            .notebook
            .code()
            .contains("Execute(output, policy=policy)"));
    }

    #[test]
    fn execute_without_dataset_errors() {
        let session = new_session();
        assert!(execute_pipeline_tool(session)
            .invoke(&args(json!({})))
            .is_err());
    }

    #[test]
    fn reset_clears_pipeline() {
        let session = prepared_session();
        add_filter_tool(session.clone())
            .invoke(&args(json!({"predicate": "anything"})))
            .unwrap();
        reset_pipeline_tool(session.clone())
            .invoke(&args(json!({})))
            .unwrap();
        let state = session.lock();
        assert!(state.pending_ops.is_empty());
        // Reset keeps the dataset and any created schemas.
        assert_eq!(state.dataset.as_deref(), Some("scientific-demo"));
    }
}
