//! `create_schema` — the Figure 2 tool.
//!
//! "This tool should be used to generate a new extraction schema. The
//! inputs are a schema name and a set of fields. [...] You should provide
//! a short description for each field. Field names cannot have spaces or
//! special characters."

use crate::codegen::schema_code;
use crate::session::SessionHandle;
use archytas::tool::{ArgKind, ArgSpec, FnTool, Tool, ToolArgs, ToolOutput, ToolSpec};
use archytas::ArchytasError;
use pz_core::prelude::*;
use serde_json::json;
use std::sync::Arc;

pub fn create_schema_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "create_schema",
        "Generate a new extraction schema. The inputs are a schema name and \
         a set of fields. For example, if the user is interested in \
         extracting author information from a paper, the schema name might \
         be 'Author' and the fields may be 'name', 'email', 'affiliation'. \
         Provide a short description for each field. Field names cannot \
         have spaces or special characters.",
    )
    .with_arg(ArgSpec::new(
        "schema_name",
        ArgKind::Str,
        "Name of the new schema",
    ))
    .with_arg(
        ArgSpec::new(
            "schema_description",
            ArgKind::Str,
            "What the schema captures",
        )
        .optional(),
    )
    .with_arg(ArgSpec::new("field_names", ArgKind::StrList, "Field names"))
    .with_arg(
        ArgSpec::new(
            "field_descriptions",
            ArgKind::StrList,
            "One description per field",
        )
        .optional(),
    )
    .with_example("extract the dataset name, description and url from each paper")
    .with_example("create a schema for author information");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let name = args["schema_name"].as_str().unwrap_or_default().to_string();
        let description = args
            .get("schema_description")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_string();
        let field_names: Vec<String> = args["field_names"]
            .as_array()
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default();
        let field_descriptions: Vec<String> = args
            .get("field_descriptions")
            .and_then(|v| v.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default();
        let fields: Vec<FieldDef> = field_names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let desc = field_descriptions
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("The {} of the record", n.replace('_', " ")));
                FieldDef::text(n.clone(), desc)
            })
            .collect();
        let schema = Schema::new(name.clone(), description, fields).map_err(|e| {
            ArchytasError::ToolFailed {
                tool: "create_schema".into(),
                reason: e.to_string(),
            }
        })?;
        let mut state = session.lock();
        state.notebook.push_code(schema_code(&schema));
        let field_list = schema.field_names().join(", ");
        state.schemas.insert(name.clone(), schema);
        Ok(ToolOutput::text(format!(
            "Created schema '{name}' with fields: {field_list}."
        ))
        .with_data(json!({ "schema": name, "fields": field_list })))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::new_session;

    fn args(v: serde_json::Value) -> ToolArgs {
        v.as_object().unwrap().clone()
    }

    #[test]
    fn creates_clinical_data_schema() {
        let session = new_session();
        let tool = create_schema_tool(session.clone());
        let out = tool
            .invoke(&args(json!({
                "schema_name": "ClinicalData",
                "schema_description": "A schema for extracting clinical data datasets from papers.",
                "field_names": ["name", "description", "url"],
                "field_descriptions": [
                    "The name of the clinical data dataset",
                    "A short description of the content of the dataset",
                    "The public URL where the dataset can be accessed"
                ]
            })))
            .unwrap();
        assert!(out.text.contains("ClinicalData"));
        let state = session.lock();
        let schema = state.schemas.get("ClinicalData").unwrap();
        assert_eq!(schema.fields.len(), 3);
        assert_eq!(
            schema.field("url").unwrap().description,
            "The public URL where the dataset can be accessed"
        );
        // A code cell was generated from the Figure 2 template.
        assert!(state
            .notebook
            .code()
            .contains("class_name = \"ClinicalData\""));
    }

    #[test]
    fn missing_descriptions_are_synthesized() {
        let session = new_session();
        let tool = create_schema_tool(session.clone());
        tool.invoke(&args(json!({
            "schema_name": "X",
            "field_names": ["dataset_name"]
        })))
        .unwrap();
        let state = session.lock();
        assert_eq!(
            state.schemas["X"]
                .field("dataset_name")
                .unwrap()
                .description,
            "The dataset name of the record"
        );
    }

    #[test]
    fn invalid_field_names_rejected() {
        let session = new_session();
        let tool = create_schema_tool(session);
        let err = tool
            .invoke(&args(json!({
                "schema_name": "Bad",
                "field_names": ["has space"]
            })))
            .unwrap_err();
        assert!(err.to_string().contains("spaces or special characters"));
    }

    #[test]
    fn field_names_accept_comma_string() {
        // The StrList coercion path: "a, b, c" from slot extraction.
        let session = new_session();
        let tool = create_schema_tool(session.clone());
        tool.invoke(&args(json!({
            "schema_name": "Listy",
            "field_names": "name, description, url"
        })))
        .unwrap();
        assert_eq!(session.lock().schemas["Listy"].fields.len(), 3);
    }
}
