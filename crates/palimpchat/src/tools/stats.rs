//! Introspection tools: `show_statistics` (Figure 5) and `export_notebook`
//! (§3: "downloading a Jupyter notebook that contains all inputs and
//! generated snippets of code").

use crate::session::SessionHandle;
use archytas::tool::{ArgKind, ArgSpec, FnTool, Tool, ToolArgs, ToolOutput, ToolSpec};
use archytas::ArchytasError;
use std::sync::Arc;

fn tool_err(tool: &str, e: impl std::fmt::Display) -> ArchytasError {
    ArchytasError::ToolFailed {
        tool: tool.into(),
        reason: e.to_string(),
    }
}

/// `show_statistics`: the execution summary of the last run.
pub fn show_statistics_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "show_statistics",
        "Show execution statistics of the most recent pipeline run: the \
         physical operators chosen, per-operator records, runtime and \
         dollar cost of the LLM invocations. Use when the user asks how \
         much the workload costed, how long it took, or which plan ran.",
    )
    .with_example("how much did the pipeline cost and how long did it take");
    Arc::new(FnTool::new(spec, move |_args: &ToolArgs| {
        let state = session.lock();
        let outcome = state
            .last_outcome
            .as_ref()
            .ok_or_else(|| tool_err("show_statistics", "no pipeline has been executed yet"))?;
        let table = outcome.stats.render_table();
        Ok(ToolOutput::text(table)
            .with_data(serde_json::to_value(&outcome.stats).unwrap_or(serde_json::Value::Null)))
    }))
}

/// `export_notebook`: download the session as a notebook.
pub fn export_notebook_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "export_notebook",
        "Export the whole session as a Jupyter-style notebook containing \
         every generated code snippet and output, plus the final pipeline \
         code. Use when the user wants to download, export or save the \
         notebook or the generated code.",
    )
    .with_arg(ArgSpec::new("path", ArgKind::Str, "File to write the notebook JSON to").optional())
    .with_example("download the notebook with the generated code");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let state = session.lock();
        let nb = state.notebook.to_json();
        let code = state.notebook.code();
        if let Some(path) = args.get("path").and_then(|v| v.as_str()) {
            std::fs::write(path, serde_json::to_string_pretty(&nb).unwrap_or_default())
                .map_err(|e| tool_err("export_notebook", e))?;
            return Ok(ToolOutput::text(format!(
                "Notebook with {} cells written to {path}.",
                state.notebook.len()
            ))
            .with_data(nb));
        }
        Ok(ToolOutput::text(format!(
            "Notebook has {} cells. Final pipeline code:\n{code}",
            state.notebook.len()
        ))
        .with_data(nb))
    }))
}

/// `snapshot_notebook`: save the current notebook state (Beaker-style
/// state management, substitution S5).
pub fn snapshot_notebook_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "snapshot_notebook",
        "Save the current notebook state so it can be restored later. Use          before a risky change when the user wants a checkpoint to return to.",
    )
    .with_example("save a checkpoint of the notebook");
    Arc::new(FnTool::new(spec, move |_args: &ToolArgs| {
        let mut state = session.lock();
        let id = state.notebook.snapshot();
        Ok(ToolOutput::text(format!("Saved notebook snapshot {id}."))
            .with_data(serde_json::json!({ "snapshot": id })))
    }))
}

/// `restore_notebook`: roll the notebook back to a snapshot.
pub fn restore_notebook_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "restore_notebook",
        "Restore the notebook to a previously saved snapshot id, discarding          the cells added since. Use when the user wants to roll back to a          checkpoint or a previous notebook state.",
    )
    .with_arg(ArgSpec::new("snapshot", ArgKind::Int, "Snapshot id to restore"))
    .with_example("restore the notebook to snapshot 0");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let id = args
            .get("snapshot")
            .and_then(|v| v.as_i64())
            .filter(|n| *n >= 0)
            .ok_or_else(|| tool_err("restore_notebook", "snapshot id required"))?
            as usize;
        let mut state = session.lock();
        if state.notebook.restore(id) {
            Ok(ToolOutput::text(format!(
                "Notebook restored to snapshot {id} ({} cells).",
                state.notebook.len()
            )))
        } else {
            Err(tool_err(
                "restore_notebook",
                format!("unknown snapshot {id}"),
            ))
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::new_session;
    use crate::tools::{
        add_convert_tool, add_filter_tool, create_schema_tool, execute_pipeline_tool,
        register_dataset_tool,
    };
    use serde_json::json;

    fn args(v: serde_json::Value) -> ToolArgs {
        v.as_object().unwrap().clone()
    }

    fn run_demo(session: &SessionHandle) {
        register_dataset_tool(session.clone())
            .invoke(&args(json!({"source": "scientific"})))
            .unwrap();
        create_schema_tool(session.clone())
            .invoke(&args(json!({
                "schema_name": "ClinicalData",
                "field_names": ["name", "url"],
                "field_descriptions": ["The dataset name", "The public URL of the dataset"]
            })))
            .unwrap();
        add_filter_tool(session.clone())
            .invoke(&args(
                json!({"predicate": "The papers are about colorectal cancer"}),
            ))
            .unwrap();
        add_convert_tool(session.clone())
            .invoke(&args(json!({"schema_name": "ClinicalData"})))
            .unwrap();
        execute_pipeline_tool(session.clone())
            .invoke(&args(json!({})))
            .unwrap();
    }

    #[test]
    fn statistics_render_after_run() {
        let session = new_session();
        run_demo(&session);
        let out = show_statistics_tool(session)
            .invoke(&args(json!({})))
            .unwrap();
        assert!(out.text.contains("LLMFilter"));
        assert!(out.text.contains("TOTAL"));
        assert!(out.data["total_cost_usd"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn statistics_before_run_error() {
        let session = new_session();
        assert!(show_statistics_tool(session)
            .invoke(&args(json!({})))
            .is_err());
    }

    #[test]
    fn export_returns_code_and_cells() {
        let session = new_session();
        run_demo(&session);
        let out = export_notebook_tool(session)
            .invoke(&args(json!({})))
            .unwrap();
        assert!(out.text.contains("Final pipeline code"));
        assert!(out.text.contains("Execute(output, policy=policy)"));
        assert!(out.data["cells"].as_array().unwrap().len() >= 4);
    }

    #[test]
    fn snapshot_and_restore_via_tools() {
        let session = new_session();
        run_demo(&session);
        let before = session.lock().notebook.len();
        let snap = snapshot_notebook_tool(session.clone())
            .invoke(&args(json!({})))
            .unwrap();
        let id = snap.data["snapshot"].as_i64().unwrap();
        session.lock().notebook.push_code("scratch = 1");
        assert_eq!(session.lock().notebook.len(), before + 1);
        restore_notebook_tool(session.clone())
            .invoke(&args(json!({ "snapshot": id })))
            .unwrap();
        assert_eq!(session.lock().notebook.len(), before);
        // Unknown snapshot errors.
        assert!(restore_notebook_tool(session)
            .invoke(&args(json!({ "snapshot": 99 })))
            .is_err());
    }

    #[test]
    fn export_writes_file() {
        let session = new_session();
        run_demo(&session);
        let path = std::env::temp_dir().join(format!("palimp-nb-{}.json", std::process::id()));
        let out = export_notebook_tool(session)
            .invoke(&args(json!({"path": path.to_str().unwrap()})))
            .unwrap();
        assert!(out.text.contains("written to"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("nbformat"));
        std::fs::remove_file(path).unwrap();
    }
}
