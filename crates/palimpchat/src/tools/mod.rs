//! The PalimpChat tool suite (paper §2.3, Figure 2).
//!
//! Each tool is an Archytas [`archytas::tool::Tool`] closing over the
//! shared [`SessionHandle`]; its docstring and examples are what the
//! reasoner scores. The suite covers the fundamental Palimpzest operations
//! (register a dataset, generate schemas, filter records) and the pipeline
//! orchestration (convert, policy, execute, statistics, export).

mod data;
mod pipeline;
mod schema;
mod stats;

pub use data::{register_dataset_tool, show_records_tool};
pub use pipeline::{
    add_classify_tool, add_convert_tool, add_filter_tool, add_limit_tool, add_retrieve_tool,
    execute_pipeline_tool, reset_pipeline_tool, set_policy_tool,
};
pub use schema::create_schema_tool;
pub use stats::{
    export_notebook_tool, restore_notebook_tool, show_statistics_tool, snapshot_notebook_tool,
};

use crate::session::SessionHandle;
use archytas::ToolRegistry;

/// Build the full tool registry for a session.
pub fn build_registry(session: SessionHandle) -> ToolRegistry {
    let mut registry = ToolRegistry::new();
    registry.register(register_dataset_tool(session.clone()));
    registry.register(create_schema_tool(session.clone()));
    registry.register(add_filter_tool(session.clone()));
    registry.register(add_convert_tool(session.clone()));
    registry.register(add_retrieve_tool(session.clone()));
    registry.register(add_limit_tool(session.clone()));
    registry.register(add_classify_tool(session.clone()));
    registry.register(set_policy_tool(session.clone()));
    registry.register(execute_pipeline_tool(session.clone()));
    registry.register(reset_pipeline_tool(session.clone()));
    registry.register(show_records_tool(session.clone()));
    registry.register(show_statistics_tool(session.clone()));
    registry.register(snapshot_notebook_tool(session.clone()));
    registry.register(restore_notebook_tool(session.clone()));
    registry.register(export_notebook_tool(session));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::new_session;

    #[test]
    fn registry_exposes_full_suite() {
        let reg = build_registry(new_session());
        let names = reg.names();
        for expected in [
            "add_classify",
            "add_convert",
            "add_filter",
            "add_limit",
            "add_retrieve",
            "create_schema",
            "execute_pipeline",
            "export_notebook",
            "register_dataset",
            "reset_pipeline",
            "set_policy",
            "show_records",
            "show_statistics",
            "snapshot_notebook",
            "restore_notebook",
        ] {
            assert!(names.contains(&expected), "missing tool {expected}");
        }
        assert_eq!(reg.len(), 15);
    }

    #[test]
    fn manual_reads_like_documentation() {
        let reg = build_registry(new_session());
        let manual = reg.manual();
        assert!(manual.contains("## create_schema"));
        assert!(manual.contains("Example:"));
    }
}
