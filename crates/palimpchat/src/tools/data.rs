//! Dataset tools: `register_dataset` (Figure 3) and `show_records`.

use crate::session::SessionHandle;
use archytas::tool::{ArgKind, ArgSpec, FnTool, Tool, ToolArgs, ToolOutput, ToolSpec};
use archytas::ArchytasError;
use pz_core::prelude::*;
use serde_json::json;
use std::sync::Arc;

fn tool_err(tool: &str, e: impl std::fmt::Display) -> ArchytasError {
    ArchytasError::ToolFailed {
        tool: tool.into(),
        reason: e.to_string(),
    }
}

/// `register_dataset`: load one of the built-in demo corpora, or a local
/// folder, as the session's input dataset.
pub fn register_dataset_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "register_dataset",
        "Register an input dataset so a pipeline can process it. Use this \
         when the user wants to load, upload, or register data: a folder of \
         PDF papers, emails, real estate listings, or a local directory \
         path. Built-in sources: 'scientific-demo' (11 PDF papers about \
         cancer research), 'legal-demo' (discovery emails), \
         'realestate-demo' (housing listings). A 'dir:<path>' source loads \
         every file in a local folder.",
    )
    .with_arg(ArgSpec::new("source", ArgKind::Str, "Which corpus to load"))
    .with_arg(ArgSpec::new("name", ArgKind::Str, "Registry name for the dataset").optional())
    .with_example("load the dataset of scientific papers from my folder")
    .with_example("upload the collection of PDF papers");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let source = args["source"].as_str().unwrap_or_default().to_string();
        let mut state = session.lock();
        let (default_name, schema, items): (&str, Schema, Vec<(String, String)>) =
            match source.as_str() {
                s if s.contains("legal") || s.contains("email") => {
                    let (docs, _) = pz_datagen::legal::demo_corpus();
                    (
                        "legal-demo",
                        Schema::text_file(),
                        docs.into_iter().map(|d| (d.filename, d.content)).collect(),
                    )
                }
                s if s.contains("real") || s.contains("estate") || s.contains("listing") => {
                    let (docs, _) = pz_datagen::realestate::demo_corpus();
                    (
                        "realestate-demo",
                        Schema::text_file(),
                        docs.into_iter().map(|d| (d.filename, d.content)).collect(),
                    )
                }
                s if s.starts_with("dir:") => {
                    let dir = s.trim_start_matches("dir:").to_string();
                    let name = args
                        .get("name")
                        .and_then(|v| v.as_str())
                        .unwrap_or("local-dir")
                        .to_string();
                    state.ctx.registry.register(Arc::new(DirectorySource::new(
                        name.clone(),
                        Schema::pdf_file(),
                        &dir,
                    )));
                    // Validate eagerly so bad paths fail at registration.
                    let n = state
                        .ctx
                        .registry
                        .get(&name)
                        .and_then(|s| s.records(0))
                        .map_err(|e| tool_err("register_dataset", e))?
                        .len();
                    state.dataset = Some(name.clone());
                    state.notebook.push_code(format!(
                        "dataset = pz.Dataset(source=\"{name}\", schema=PDFFile)"
                    ));
                    return Ok(ToolOutput::text(format!(
                        "Registered dataset '{name}' from {dir} with {n} files (PDFFile schema)."
                    ))
                    .with_data(json!({ "name": name, "records": n })));
                }
                // Default: the scientific discovery corpus of §3.
                _ => {
                    let (docs, _) = pz_datagen::science::demo_corpus();
                    (
                        "scientific-demo",
                        Schema::pdf_file(),
                        docs.into_iter().map(|d| (d.filename, d.content)).collect(),
                    )
                }
            };
        let name = args
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap_or(default_name)
            .to_string();
        let n = items.len();
        let schema_name = schema.name.clone();
        state
            .ctx
            .registry
            .register(Arc::new(MemorySource::new(name.clone(), schema, items)));
        state.dataset = Some(name.clone());
        state.reset_pipeline();
        state.notebook.push_code(format!(
            "dataset = pz.Dataset(source=\"{name}\", schema={schema_name})"
        ));
        Ok(ToolOutput::text(format!(
            "Registered dataset '{name}' with {n} records ({schema_name} schema). \
             The native {schema_name} schema was chosen automatically from the file extensions."
        ))
        .with_data(json!({ "name": name, "records": n, "schema": schema_name })))
    }))
}

/// `show_records`: display the output of the last execution.
pub fn show_records_tool(session: SessionHandle) -> Arc<dyn Tool> {
    let spec = ToolSpec::new(
        "show_records",
        "Show the output records of the most recent pipeline execution. Use \
         when the user asks to see, list, display or visualize the results, \
         records, outputs, or extracted items.",
    )
    .with_arg(ArgSpec::new("limit", ArgKind::Int, "Maximum records to show").optional())
    .with_example("show me the extracted results");
    Arc::new(FnTool::new(spec, move |args: &ToolArgs| {
        let state = session.lock();
        let outcome = state
            .last_outcome
            .as_ref()
            .ok_or_else(|| tool_err("show_records", "no pipeline has been executed yet"))?;
        let limit = args
            .get("limit")
            .and_then(|v| v.as_i64())
            .map(|n| n.max(0) as usize)
            .unwrap_or(20);
        let shown: Vec<serde_json::Value> = outcome
            .records
            .iter()
            .take(limit)
            .map(|r| r.to_json())
            .collect();
        let mut text = format!(
            "{} output record(s){}:\n",
            outcome.records.len(),
            if outcome.records.len() > limit {
                format!(" (showing {limit})")
            } else {
                String::new()
            }
        );
        for r in &shown {
            text.push_str(&serde_json::to_string(r).unwrap_or_default());
            text.push('\n');
        }
        Ok(ToolOutput::text(text).with_data(json!(shown)))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::new_session;

    fn args(v: serde_json::Value) -> ToolArgs {
        v.as_object().unwrap().clone()
    }

    #[test]
    fn registers_scientific_demo() {
        let session = new_session();
        let tool = register_dataset_tool(session.clone());
        let out = tool
            .invoke(&args(json!({"source": "scientific papers"})))
            .unwrap();
        assert!(out.text.contains("11 records"));
        assert!(out.text.contains("PDFFile"));
        let state = session.lock();
        assert_eq!(state.dataset.as_deref(), Some("scientific-demo"));
        assert!(state.ctx.registry.contains("scientific-demo"));
        assert_eq!(state.notebook.len(), 1);
    }

    #[test]
    fn registers_legal_and_realestate() {
        let session = new_session();
        let tool = register_dataset_tool(session.clone());
        tool.invoke(&args(json!({"source": "legal emails"})))
            .unwrap();
        assert_eq!(session.lock().dataset.as_deref(), Some("legal-demo"));
        tool.invoke(&args(json!({"source": "real estate listings"})))
            .unwrap();
        assert_eq!(session.lock().dataset.as_deref(), Some("realestate-demo"));
    }

    #[test]
    fn custom_name_respected() {
        let session = new_session();
        let tool = register_dataset_tool(session.clone());
        tool.invoke(&args(
            json!({"source": "scientific", "name": "sigmod-demo"}),
        ))
        .unwrap();
        assert_eq!(session.lock().dataset.as_deref(), Some("sigmod-demo"));
    }

    #[test]
    fn directory_source_loads_files() {
        let dir = std::env::temp_dir().join(format!("palimp-data-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.txt"), "hello").unwrap();
        let session = new_session();
        let tool = register_dataset_tool(session.clone());
        let out = tool
            .invoke(&args(json!({"source": format!("dir:{}", dir.display())})))
            .unwrap();
        assert!(out.text.contains("1 files"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_source_bad_path_errors() {
        let session = new_session();
        let tool = register_dataset_tool(session);
        assert!(tool
            .invoke(&args(json!({"source": "dir:/does/not/exist"})))
            .is_err());
    }

    #[test]
    fn show_records_requires_execution() {
        let session = new_session();
        let tool = show_records_tool(session);
        assert!(tool.invoke(&args(json!({}))).is_err());
    }
}
