//! Interactive PalimpChat REPL.
//!
//! ```text
//! $ cargo run -p palimpchat --bin palimpchat-repl
//! you> load the dataset of scientific papers
//! ...
//! ```
//!
//! Type `:trace` to toggle the ReAct trace display, `:spans` to print the
//! session's observability trace tree, `:export <path>` to write the trace
//! as JSONL, `:exec streaming|materializing` to switch the execution mode,
//! `:parallelism <n>|auto` to size the streaming per-stage worker pools,
//! `:adaptive [on|off|thresholds <time> <cost> <health>]` to arm runtime
//! plan repair (re-cost the remaining suffix mid-run, swap degraded
//! models), `:faults <spec>|off` to script provider faults into the
//! simulator, `:watch <dataset>|off` to arm incremental execution (the
//! dataset becomes editable and re-runs replay memoized operator verdicts,
//! re-billing only changed records), `:append <dataset> <filename>
//! <content...>` to stream a new record into a watched dataset,
//! `:serve [tenants] [sessions]` to run a seeded multi-tenant serving demo
//! (fair scheduling, per-tenant ledgers, admission control — see pz-serve),
//! `:breaker` to inspect per-model circuit breakers, `:profile on|off` to
//! arm the pipeline profiler (`:profile` alone prints the attribution
//! table for the last profiled run), `:export-chrome <path>` /
//! `:export-prom <path>` to write the trace as a Chrome trace-event file
//! or Prometheus text exposition, `:quit` to exit.

use palimpchat::PalimpChat;
use pz_core::prelude::{ExecMode, ExecutionSnapshot, VersionedSource};
use std::io::{self, BufRead, Write};

fn main() {
    let mut chat = PalimpChat::new();
    let mut show_trace = false;
    let stdin = io::stdin();
    println!(
        "PalimpChat (reproduction) — declarative AI analytics through chat.\n\
         Try: \"load the dataset of scientific papers\", then\n\
         \"I'm interested in papers about colorectal cancer, and for these papers, \
         extract whatever public dataset is used by the study\",\n\
         then \"run the pipeline with maximum quality\".\n\
         (:trace toggles traces, :spans shows the span tree, :export <path> writes JSONL, \
         :exec streaming|materializing switches the executor, \
         :parallelism <n>|auto sizes the streaming worker pools, \
         :adaptive [on|off|thresholds t c h] arms runtime plan repair, \
         :faults <spec>|off scripts provider faults, \
         :watch <dataset>|off arms incremental re-runs, \
         :append <dataset> <file> <text> streams in a record, \
         :serve [tenants] [sessions] runs a multi-tenant serving demo, \
         :breaker shows model health, \
         :profile [on|off] arms/prints the pipeline profiler, \
         :export-chrome <path> writes a Chrome trace, \
         :export-prom <path> writes Prometheus metrics, :quit exits)\n"
    );
    loop {
        print!("you> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" | "exit" => break,
            ":trace" => {
                show_trace = !show_trace;
                println!("trace display: {}", if show_trace { "on" } else { "off" });
                continue;
            }
            ":spans" => {
                print!("{}", pz_obs::render_tree(&chat.tracer().snapshot()));
                continue;
            }
            ":breaker" | ":breakers" => {
                let snaps = chat.session().lock().ctx.health.snapshot();
                if snaps.is_empty() {
                    println!("no model health recorded yet — run a pipeline first");
                } else {
                    for s in snaps {
                        println!(
                            "{:<26} {:<9} ok={} fail={} trips={} window_failure_rate={:.2}",
                            s.model.to_string(),
                            s.state.name(),
                            s.successes_total,
                            s.failures_total,
                            s.trips,
                            s.window_failure_rate
                        );
                    }
                }
                continue;
            }
            ":faults" => {
                let plan = chat.session().lock().ctx.faults.plan();
                if plan.is_empty() {
                    println!("no fault plan active (try :faults gpt-4o:outage@0..120)");
                } else {
                    println!("fault plan: {}", plan.describe());
                }
                continue;
            }
            ":profile" => {
                match pz_obs::profile_plan(&chat.tracer().snapshot()) {
                    Some(profile) => print!("{}", profile.render()),
                    None => println!(
                        "no profiled plan in the trace — arm with :profile on, then run a pipeline"
                    ),
                }
                continue;
            }
            ":adaptive" => {
                let a = chat.session().lock().ctx.adaptive;
                if a.enabled {
                    println!(
                        "adaptive replanning: on (time drift >= {:.1}x, cost drift >= {:.1}x, \
                         failure rate >= {:.2}, min {} records, max {} repairs/run)",
                        a.time_drift_threshold,
                        a.cost_drift_threshold,
                        a.health_failure_rate,
                        a.min_records,
                        a.max_repairs
                    );
                } else {
                    println!("adaptive replanning: off (arm with :adaptive on)");
                }
                continue;
            }
            ":adaptive on" => {
                let mut s = chat.session().lock();
                s.ctx.adaptive.enabled = true;
                println!(
                    "adaptive replanning: on — degraded models are re-costed and swapped mid-run \
                     (rides on failover; see :faults to script a brownout)"
                );
                continue;
            }
            ":adaptive off" => {
                chat.session().lock().ctx.adaptive.enabled = false;
                println!("adaptive replanning: off");
                continue;
            }
            ":watch" => {
                let s = chat.session().lock();
                match &s.ctx.incremental {
                    Some(snap) => println!(
                        "watch: on — {} memoized operator verdict(s); re-runs re-bill \
                         only changed records (disarm with :watch off)",
                        snap.len()
                    ),
                    None => println!("watch: off (arm with :watch <dataset>)"),
                }
                continue;
            }
            ":watch off" => {
                chat.session().lock().ctx.incremental = None;
                println!("watch: off (memo dropped; the next run pays full price)");
                continue;
            }
            ":profile on" => {
                chat.tracer().set_profiling(true);
                println!("pipeline profiler: on (per-stage gauges recorded on the next run)");
                continue;
            }
            ":profile off" => {
                chat.tracer().set_profiling(false);
                println!("pipeline profiler: off");
                continue;
            }
            ":serve" => {
                serve_demo(4, 2);
                continue;
            }
            _ => {}
        }
        if let Some(rest) = line.strip_prefix(":serve ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            match parts.as_slice() {
                [t] => match t.parse::<usize>() {
                    Ok(t) if t >= 1 => serve_demo(t, 2),
                    _ => println!("usage: :serve [tenants>=1] [sessions>=1]"),
                },
                [t, s] => match (t.parse::<usize>(), s.parse::<usize>()) {
                    (Ok(t), Ok(s)) if t >= 1 && s >= 1 => serve_demo(t, s),
                    _ => println!("usage: :serve [tenants>=1] [sessions>=1]"),
                },
                _ => println!("usage: :serve [tenants>=1] [sessions>=1]"),
            }
            continue;
        }
        if let Some(mode) = line.strip_prefix(":exec ") {
            match mode.trim() {
                "streaming" => {
                    chat.session().lock().ctx.exec_mode = ExecMode::streaming();
                    println!("execution mode: streaming (pipelined stages, bounded channels)");
                }
                "materializing" => {
                    chat.session().lock().ctx.exec_mode = ExecMode::Materializing;
                    println!("execution mode: materializing (operator-at-a-time)");
                }
                other => println!("unknown mode {other:?} — try :exec streaming | materializing"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(":adaptive thresholds ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let parsed: Option<(f64, f64, f64)> = match parts.as_slice() {
                [t, c, h] => match (t.parse(), c.parse(), h.parse()) {
                    (Ok(t), Ok(c), Ok(h)) => Some((t, c, h)),
                    _ => None,
                },
                _ => None,
            };
            match parsed {
                Some((t, c, h)) if t >= 1.0 && c >= 1.0 && (0.0..=1.0).contains(&h) => {
                    let mut s = chat.session().lock();
                    s.ctx.adaptive.time_drift_threshold = t;
                    s.ctx.adaptive.cost_drift_threshold = c;
                    s.ctx.adaptive.health_failure_rate = h;
                    s.ctx.adaptive.enabled = true;
                    println!(
                        "adaptive replanning: on (time drift >= {t:.1}x, cost drift >= {c:.1}x, \
                         failure rate >= {h:.2})"
                    );
                }
                _ => println!(
                    "usage: :adaptive thresholds <time>=1.0 <cost>=1.0 <health 0..1> \
                     (e.g. :adaptive thresholds 3 3 0.34)"
                ),
            }
            continue;
        }
        if let Some(n) = line.strip_prefix(":parallelism ") {
            match n.trim() {
                "auto" => {
                    let cores = pz_core::exec::available_cores();
                    chat.session().lock().ctx.parallelism = cores;
                    println!("streaming parallelism: {cores} workers/stage (one per core)");
                }
                n => match n.parse::<usize>() {
                    Ok(w) if w >= 1 => {
                        chat.session().lock().ctx.parallelism = w;
                        if w == 1 {
                            println!("streaming parallelism: serial (1 worker/stage)");
                        } else {
                            println!(
                                "streaming parallelism: {w} workers/stage \
                                 (clamped per model by its rate limit)"
                            );
                        }
                    }
                    _ => println!("usage: :parallelism <n>=1 | auto"),
                },
            }
            continue;
        }
        if let Some(ds) = line.strip_prefix(":watch ") {
            let ds = ds.trim().to_string();
            let mut s = chat.session().lock();
            match s.ctx.registry.get(&ds) {
                Err(e) => println!("cannot watch: {e}"),
                Ok(src) => {
                    // A watched dataset must accept live edits. Re-wrap a
                    // plain source's current records into a VersionedSource
                    // under the same name so `:append` has somewhere to go;
                    // already-versioned sources are kept as-is (their memo
                    // history stays valid).
                    if src.as_versioned().is_none() {
                        match src.records(0) {
                            Ok(recs) => {
                                let items = recs
                                    .iter()
                                    .map(|r| {
                                        (
                                            r.get("filename")
                                                .map(|v| v.as_display())
                                                .unwrap_or_default(),
                                            r.get("contents")
                                                .map(|v| v.as_display())
                                                .unwrap_or_default(),
                                        )
                                    })
                                    .collect();
                                s.ctx
                                    .registry
                                    .register(std::sync::Arc::new(VersionedSource::new(
                                        &ds,
                                        src.schema(),
                                        items,
                                    )));
                            }
                            Err(e) => {
                                println!("cannot watch {ds}: {e}");
                                continue;
                            }
                        }
                    }
                    if s.ctx.incremental.is_none() {
                        s.ctx.incremental = Some(ExecutionSnapshot::new());
                    }
                    println!(
                        "watching {ds} — incremental execution armed: re-runs replay \
                         memoized operator verdicts and re-bill only changed records \
                         (:append {ds} <file> <text> to add one, :watch off to disarm)"
                    );
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(":append ") {
            let mut parts = rest.trim().splitn(3, char::is_whitespace);
            match (parts.next(), parts.next(), parts.next()) {
                (Some(ds), Some(filename), Some(content)) => {
                    let s = chat.session().lock();
                    match s.ctx.registry.get(ds) {
                        Err(e) => println!("cannot append: {e}"),
                        Ok(src) => match src.as_versioned() {
                            None => println!(
                                "{ds} is not watched — :watch {ds} first to make it editable"
                            ),
                            Some(v) => {
                                let stamp = v.append(filename, content);
                                println!(
                                    "{ds} v{}: {} record(s) — re-run the pipeline; only \
                                     the new record will be billed",
                                    stamp.version, stamp.records
                                );
                            }
                        },
                    }
                }
                _ => println!("usage: :append <dataset> <filename> <content...>"),
            }
            continue;
        }
        if let Some(spec) = line.strip_prefix(":faults ") {
            let spec = spec.trim();
            if spec == "off" || spec == "none" {
                chat.session().lock().ctx.faults.clear();
                println!("fault plan cleared");
            } else {
                // Same default seed as the simulator: brownout draws stay
                // deterministic across REPL sessions.
                match pz_llm::FaultPlan::parse(spec, 42) {
                    Ok(plan) => {
                        println!("fault plan: {}", plan.describe());
                        chat.session().lock().ctx.faults.set(plan);
                    }
                    Err(e) => println!(
                        "bad fault spec: {e}\n(clauses look like \
                         model:outage@10..60, model:brownout@0..30:p=0.5, \
                         model:ratelimit@5..25:retry=15, model:timeout@0..40:stall=30, \
                         model:malformed@0..20 — join with ';')"
                    ),
                }
            }
            continue;
        }
        if let Some(path) = line.strip_prefix(":export-chrome ") {
            let path = path.trim();
            match std::fs::write(path, pz_obs::to_chrome_trace(&chat.tracer().snapshot())) {
                Ok(()) => println!(
                    "Chrome trace exported to {path} (open in chrome://tracing or Perfetto)"
                ),
                Err(e) => println!("export failed: {e}"),
            }
            continue;
        }
        if let Some(path) = line.strip_prefix(":export-prom ") {
            let path = path.trim();
            match std::fs::write(path, pz_obs::to_prometheus(&chat.tracer().snapshot())) {
                Ok(()) => println!("Prometheus metrics exported to {path}"),
                Err(e) => println!("export failed: {e}"),
            }
            continue;
        }
        if let Some(path) = line.strip_prefix(":export ") {
            let path = path.trim();
            match std::fs::write(path, chat.tracer().snapshot().to_jsonl()) {
                Ok(()) => println!("trace exported to {path}"),
                Err(e) => println!("export failed: {e}"),
            }
            continue;
        }
        if line.starts_with(':') {
            println!("unknown command {line:?} — see the banner for the command list");
            continue;
        }
        match chat.handle(line) {
            Ok(resp) => {
                if show_trace {
                    println!("{}", resp.trace.render());
                }
                println!("palimpchat> {}\n", resp.reply);
            }
            Err(e) => println!("palimpchat> error: {e}\n"),
        }
    }
    println!("bye.");
}

/// `:serve [tenants] [sessions]` — a self-contained multi-tenant serving
/// demo on a fresh `pz-serve` host: seeded traffic (half interactive chat
/// tenants at weight 4, half batch at weight 1), every session a private
/// corpus and pipeline, all submitted concurrently through admission
/// control and the weighted-fair scheduler. Prints per-tenant completions,
/// bills, and the aggregate fairness/latency numbers.
fn serve_demo(tenants: usize, sessions: usize) {
    use pz_core::prelude::{Dataset, MemorySource, Schema};
    use pz_serve::{AdmissionConfig, ServeConfig, ServeHost, SessionJob, TenantSpec};

    let traffic = pz_datagen::traffic::generate(pz_datagen::traffic::TrafficConfig {
        tenants,
        sessions_per_tenant: sessions,
        docs_per_session: 3,
        ..Default::default()
    });
    let n_jobs = traffic.total_sessions();
    let mut host = ServeHost::new(ServeConfig {
        admission: AdmissionConfig {
            max_concurrent_runs: n_jobs.max(1),
            max_queued: n_jobs.max(1),
            expected_run_secs: 30.0,
        },
        shared_cache: true,
    });
    let mut jobs = Vec::new();
    for t in &traffic.tenants {
        host.add_tenant(
            TenantSpec::new(&t.id)
                .with_weight(t.weight)
                .with_seed(3000 + t.id.bytes().map(u64::from).sum::<u64>()),
        );
        let ctx = host.session_ctx(&t.id).expect("tenant just provisioned");
        for s in &t.sessions {
            let (docs, _) = pz_datagen::science::generate(pz_datagen::science::ScienceConfig {
                n_papers: s.n_docs,
                seed: s.corpus_seed,
                ..Default::default()
            });
            // Salt content per session so the shared cache never dedups
            // across sessions and bills stay deterministic.
            let items: Vec<(String, String)> = docs
                .into_iter()
                .map(|d| {
                    (
                        d.filename,
                        format!("{}\n[workspace {}]", d.content, s.session),
                    )
                })
                .collect();
            ctx.registry.register(std::sync::Arc::new(MemorySource::new(
                &s.session,
                Schema::pdf_file(),
                items,
            )));
            let plan = Dataset::source(&s.session)
                .filter(pz_datagen::science::FILTER_PREDICATE)
                .build()
                .expect("static plan is valid");
            let mut job = SessionJob::new(&t.id, &s.session, plan);
            if !t.interactive {
                job = job.batch();
            }
            jobs.push(job);
        }
    }
    println!(
        "serving {n_jobs} session(s) across {tenants} tenant(s) \
         ({} interactive, {} batch)...",
        traffic.tenants.iter().filter(|t| t.interactive).count(),
        traffic.tenants.iter().filter(|t| !t.interactive).count(),
    );
    let report = host.serve(jobs);
    println!(
        "{:<12} {:>6} {:>9} {:>6} {:>11} {:>10}",
        "tenant", "weight", "completed", "shed", "cost($)", "llm calls"
    );
    for tm in &report.metrics.per_tenant {
        let weight = traffic
            .tenants
            .iter()
            .find(|t| t.id == tm.tenant)
            .map(|t| t.weight)
            .unwrap_or(1.0);
        println!(
            "{:<12} {:>6.1} {:>9} {:>6} {:>11.4} {:>10}",
            tm.tenant, weight, tm.sessions_completed, tm.sessions_shed, tm.cost_usd, tm.llm_calls
        );
    }
    println!(
        "{}/{} completed, {} shed — p50 {:.1}s p99 {:.1}s (virtual), \
         {:.3} sessions/s, Jain fairness {:.3}, {} scheduler grant(s)",
        report.metrics.sessions_completed,
        report.metrics.sessions_submitted,
        report.metrics.sessions_shed,
        report.metrics.p50_latency_secs,
        report.metrics.p99_latency_secs,
        report.metrics.throughput_per_sec,
        report.metrics.fairness_jain,
        report.scheduler.granted,
    );
}
