//! The PalimpChat reasoner.
//!
//! Substitution S3 applied to the domain: where the real system lets an
//! LLM read the tool docstrings and decide, this planner classifies each
//! clause of the user's utterance into a Palimpzest intent and emits the
//! corresponding tool invocations — including the Figure 4 behaviour where
//! one request ("I'm interested in papers about colorectal cancer, and for
//! these papers extract the datasets used") decomposes into several tool
//! calls (`add_filter`, `create_schema`, `add_convert`).
//!
//! The planning function [`plan_tasks`] is pure and deterministic, so chat
//! behaviour is exactly reproducible and directly testable.

use archytas::planner::{extract_quoted, split_clauses, PlannerDecision, Reasoner};
use archytas::react::ReactStep;
use archytas::tool::ToolArgs;
use archytas::{ArchytasResult, ToolRegistry};
use serde_json::{json, Value};

/// One planned tool invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedTask {
    pub thought: String,
    pub tool: String,
    pub args: ToolArgs,
}

fn task(thought: impl Into<String>, tool: &str, args: Value) -> PlannedTask {
    PlannedTask {
        thought: thought.into(),
        tool: tool.to_string(),
        args: args.as_object().cloned().unwrap_or_default(),
    }
}

/// Split an utterance into intent clauses. Extends the generic splitter
/// with the demo's phrasing: "..., and for these papers, ..." and
/// "... and extract ...".
fn clauses(goal: &str) -> Vec<String> {
    let mut out = Vec::new();
    for clause in split_clauses(goal) {
        let lowered = clause.to_lowercase();
        if let Some(pos) = lowered.find(", and for these") {
            let (a, b) = clause.split_at(pos);
            out.push(a.trim().to_string());
            out.push(
                b.trim_start_matches(", ")
                    .trim_start_matches("and ")
                    .trim()
                    .to_string(),
            );
        } else if let Some(pos) = lowered.find(" and extract") {
            let (a, b) = clause.split_at(pos);
            out.push(a.trim().to_string());
            out.push(b.trim_start_matches(" and ").trim().to_string());
        } else {
            out.push(clause);
        }
    }
    out.into_iter().filter(|c| !c.is_empty()).collect()
}

fn contains_any(hay: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| hay.contains(n))
}

/// A dollar or second budget mentioned in a clause ("under 0.5 dollars",
/// "below $2", "in under 120 seconds").
fn parse_budget(clause: &str) -> (Option<f64>, Option<f64>) {
    let mut cost = None;
    let mut time = None;
    let tokens: Vec<&str> = clause.split_whitespace().collect();
    for (i, t) in tokens.iter().enumerate() {
        let raw = t.trim_start_matches('$').trim_end_matches([',', '.', ';']);
        if let Ok(v) = raw.parse::<f64>() {
            let next = tokens.get(i + 1).copied().unwrap_or("");
            if t.starts_with('$') || next.starts_with("dollar") || next.starts_with("usd") {
                cost = Some(v);
            } else if next.starts_with("second") || next.starts_with("sec") {
                time = Some(v);
            }
        }
    }
    (cost, time)
}

/// Normalize a field phrase to a valid field name: "dataset name" →
/// `dataset_name`, "URL" → `url`.
fn to_field_name(phrase: &str) -> String {
    phrase
        .split_whitespace()
        .map(|w| w.to_lowercase())
        .filter(|w| !matches!(w.as_str(), "the" | "a" | "an" | "its" | "their"))
        .collect::<Vec<_>>()
        .join("_")
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// Parse the field list of an extraction clause, e.g.
/// "extract the dataset name, description and url" → three fields.
fn parse_fields(clause: &str) -> Vec<String> {
    let lowered = clause.to_lowercase();
    // Prefer an explicit "fields ..." list; else whatever follows "extract".
    let tail = if let Some(pos) = lowered.find("fields") {
        &clause[pos + "fields".len()..]
    } else if let Some(pos) = lowered.find("extract") {
        &clause[pos + "extract".len()..]
    } else {
        clause
    };
    // Cut trailing context ("... of each email", "... used by the study").
    let mut tail = tail.trim();
    for stop in [
        " of each ",
        " from each ",
        " used by ",
        " used in ",
        " for every ",
        " in the ",
    ] {
        if let Some(pos) = tail.to_lowercase().find(stop) {
            tail = &tail[..pos];
        }
    }
    let tail = tail
        .trim_start_matches("the ")
        .trim_start_matches("whatever ")
        .trim_start_matches("all ");
    tail.replace(" and ", ",")
        .split(',')
        .map(to_field_name)
        .filter(|f| !f.is_empty() && f.len() < 40)
        .collect()
}

/// Default descriptions for well-known fields (the demo's ClinicalData).
fn describe_field(name: &str) -> String {
    match name {
        "name" | "dataset_name" => "The name of the dataset".into(),
        "description" => "A short description of the content of the dataset".into(),
        "url" => "The public URL where the dataset can be accessed".into(),
        "sender" | "from" => "The email address of the sender".into(),
        "recipient" | "to" => "The email address of the recipient".into(),
        "date" => "The date of the message".into(),
        "subject" => "The subject line".into(),
        "address" => "The street address of the listing".into(),
        "price" => "The listing price in dollars".into(),
        "bedrooms" => "The number of bedrooms".into(),
        other => format!("The {} of the record", other.replace('_', " ")),
    }
}

/// Turn a filter clause into a clean predicate: prefer quoted text; strip
/// conversational lead-ins otherwise.
fn to_predicate(clause: &str) -> String {
    if let Some(q) = extract_quoted(clause).into_iter().next() {
        return q;
    }
    let lowered = clause.to_lowercase();
    for lead in [
        "i am interested in ",
        "i'm interested in ",
        "i am only interested in ",
        "keep only ",
        "only keep ",
        "keep the ",
        "filter for ",
        "filter the ",
        "filter ",
        "find the ",
        "find ",
        "select ",
        "show me ",
    ] {
        if let Some(pos) = lowered.find(lead) {
            return capitalize(clause[pos + lead.len()..].trim());
        }
    }
    capitalize(clause.trim())
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Classify one clause into zero or more tool invocations.
fn plan_clause(clause: &str) -> Vec<PlannedTask> {
    let lowered = clause.to_lowercase();

    // 1. Dataset registration.
    if contains_any(&lowered, &["load", "upload", "register", "open the"])
        && contains_any(
            &lowered,
            &[
                "dataset", "paper", "pdf", "folder", "file", "email", "listing", "data", "corpus",
            ],
        )
    {
        let source = if contains_any(&lowered, &["legal", "email", "discovery"]) {
            "legal-demo"
        } else if contains_any(&lowered, &["real estate", "listing", "housing", "estate"]) {
            "realestate-demo"
        } else {
            "scientific-demo"
        };
        let mut args = json!({ "source": source });
        if let Some(q) = extract_quoted(clause).into_iter().next() {
            if q.starts_with('/') || q.contains('/') {
                args = json!({ "source": format!("dir:{q}") });
            } else {
                args["name"] = json!(q);
            }
        }
        return vec![task(
            format!("The user wants data loaded; register_dataset with source '{source}'."),
            "register_dataset",
            args,
        )];
    }

    // 2. Statistics (before the run intent: "how long did the run take"
    // must not trigger a new execution).
    if contains_any(
        &lowered,
        &[
            "how much",
            "how long",
            "statistic",
            "what was the cost",
            "what did it cost",
            "did the run cost",
            "report the cost",
            "execution stats",
        ],
    ) {
        return vec![task(
            "The user asks about execution cost/runtime; show the statistics.",
            "show_statistics",
            json!({}),
        )];
    }

    // 3. Results.
    if contains_any(
        &lowered,
        &["show", "display", "visualize", "list the", "see the"],
    ) && contains_any(
        &lowered,
        &["result", "record", "output", "extracted", "dataset"],
    ) {
        return vec![task(
            "The user wants to see the outputs; show the records.",
            "show_records",
            json!({}),
        )];
    }

    // 4b. Notebook checkpoints (Beaker-style state management).
    if contains_any(&lowered, &["checkpoint", "snapshot"]) {
        if contains_any(&lowered, &["restore", "roll back", "rollback", "go back"]) {
            let id = archytas::planner::extract_numbers(clause)
                .into_iter()
                .find(|n| *n >= 0)
                .unwrap_or(0);
            return vec![task(
                format!("Restore the notebook to snapshot {id}."),
                "restore_notebook",
                json!({ "snapshot": id }),
            )];
        }
        return vec![task(
            "Save a notebook checkpoint.",
            "snapshot_notebook",
            json!({}),
        )];
    }

    // 4. Export.
    if contains_any(
        &lowered,
        &[
            "export",
            "download",
            "notebook",
            "save the code",
            "generated code",
        ],
    ) {
        return vec![task(
            "The user wants the notebook; export it.",
            "export_notebook",
            json!({}),
        )];
    }

    // 5. Reset.
    if contains_any(
        &lowered,
        &["start over", "reset", "clear the pipeline", "undo"],
    ) {
        return vec![task(
            "Start from a clean pipeline.",
            "reset_pipeline",
            json!({}),
        )];
    }

    // 6b. Semantic top-k ("the 5 most relevant papers about X").
    if contains_any(&lowered, &["most relevant", "most similar", "top "])
        && !contains_any(&lowered, &["extract"])
    {
        let k = archytas::planner::extract_numbers(clause)
            .into_iter()
            .find(|n| (1..=1000).contains(n))
            .unwrap_or(5);
        let query = if let Some(pos) = lowered.find("about ") {
            clause[pos + "about ".len()..].trim().to_string()
        } else {
            to_predicate(clause)
        };
        return vec![task(
            format!("The user wants the top {k}; add a retrieval step."),
            "add_retrieve",
            json!({ "query": query, "k": k }),
        )];
    }

    // 6c. Limit ("only process the first 3 papers").
    if contains_any(&lowered, &["limit to", "first "])
        && !archytas::planner::extract_numbers(clause).is_empty()
        && contains_any(
            &lowered,
            &["record", "paper", "email", "listing", "result", "rows"],
        )
    {
        let n = archytas::planner::extract_numbers(clause)
            .into_iter()
            .find(|n| *n > 0)
            .unwrap_or(10);
        return vec![task(
            format!("Cap the pipeline at {n} records."),
            "add_limit",
            json!({ "n": n }),
        )];
    }

    // 6. Policy + execution.
    let wants_run = contains_any(&lowered, &["run", "execute", "process the", "go ahead"]);
    let policy = if contains_any(
        &lowered,
        &[
            "max quality",
            "maximum quality",
            "best quality",
            "maximize quality",
            "highest quality",
        ],
    ) {
        Some("max_quality")
    } else if contains_any(
        &lowered,
        &[
            "min cost",
            "minimum cost",
            "cheapest",
            "minimize cost",
            "lowest cost",
        ],
    ) {
        Some("min_cost")
    } else if contains_any(
        &lowered,
        &[
            "min time",
            "fastest",
            "minimize runtime",
            "minimum runtime",
            "minimize time",
            "quick as possible",
        ],
    ) {
        Some("min_time")
    } else {
        None
    };
    if policy.is_some() || wants_run {
        let mut tasks = Vec::new();
        if let Some(p) = policy {
            let (cost, time) = parse_budget(&lowered);
            let mut args = json!({ "policy": p });
            if let Some(c) = cost {
                args["cost_budget"] = json!(c);
            }
            if let Some(t) = time {
                args["time_budget"] = json!(t);
            }
            tasks.push(task(
                format!("The user stated an optimization goal: {p}."),
                "set_policy",
                args,
            ));
        }
        if wants_run {
            tasks.push(task(
                "The pipeline is ready; execute it.",
                "execute_pipeline",
                json!({}),
            ));
        }
        return tasks;
    }

    // 6d. Classification ("categorize the emails into X and Y").
    if contains_any(
        &lowered,
        &["categorize", "classify", "bucket the", "tag the"],
    ) {
        if let Some(pos) = lowered.find(" into ") {
            let tail = &clause[pos + " into ".len()..];
            let labels: Vec<String> = tail
                .replace(" and ", ",")
                .split(',')
                .map(|l| l.trim().trim_end_matches('.').to_string())
                .filter(|l| !l.is_empty())
                .collect();
            if labels.len() >= 2 {
                return vec![task(
                    format!("Categorize records into {labels:?}."),
                    "add_classify",
                    json!({ "labels": labels, "output_field": "category" }),
                )];
            }
        }
    }

    // 7. Extraction: create_schema + add_convert (the Figure 4 two-step).
    if contains_any(&lowered, &["extract", "schema", "pull out"]) {
        let mut fields = parse_fields(clause);
        let about_datasets = contains_any(&lowered, &["dataset", "data source"]);
        if fields.len() < 2 && about_datasets {
            // The demo default: dataset mentions carry name/description/url.
            fields = vec!["name".into(), "description".into(), "url".into()];
        }
        if fields.is_empty() {
            fields = vec!["summary".into()];
        }
        let schema_name = if about_datasets {
            "ClinicalData"
        } else {
            "ExtractedInfo"
        };
        let descriptions: Vec<String> = fields.iter().map(|f| describe_field(f)).collect();
        let cardinality = if about_datasets || lowered.contains(" all ") {
            "many"
        } else {
            "one"
        };
        return vec![
            task(
                format!(
                    "The user wants structured extraction; create schema '{schema_name}' with fields {fields:?}."
                ),
                "create_schema",
                json!({
                    "schema_name": schema_name,
                    "schema_description": format!("A schema for extracting {} from the records.", fields.join(", ")),
                    "field_names": fields,
                    "field_descriptions": descriptions,
                }),
            ),
            task(
                "Apply the new schema to the (filtered) records with a convert.",
                "add_convert",
                json!({ "schema_name": schema_name, "cardinality": cardinality }),
            ),
        ];
    }

    // 8. Filtering (the catch-all semantic intent).
    if contains_any(
        &lowered,
        &[
            "interested in",
            "about",
            "filter",
            "only",
            "keep",
            "discuss",
            "describe",
            "mention",
            "that are",
            "which are",
        ],
    ) {
        let predicate = to_predicate(clause);
        return vec![task(
            format!("The user narrows the data; add a filter for {predicate:?}."),
            "add_filter",
            json!({ "predicate": predicate }),
        )];
    }

    Vec::new()
}

/// Plan the full utterance: concatenation of per-clause plans.
pub fn plan_tasks(goal: &str) -> Vec<PlannedTask> {
    clauses(goal).iter().flat_map(|c| plan_clause(c)).collect()
}

/// The reasoner: replays `plan_tasks(goal)` one action per ReAct step.
#[derive(Clone, Debug, Default)]
pub struct PalimpPlanner;

impl PalimpPlanner {
    pub fn new() -> Self {
        Self
    }
}

impl Reasoner for PalimpPlanner {
    fn decide(
        &self,
        goal: &str,
        _registry: &ToolRegistry,
        history: &[ReactStep],
    ) -> ArchytasResult<PlannerDecision> {
        let tasks = plan_tasks(goal);
        let done = history.iter().filter(|s| s.action.is_some()).count();
        if done < tasks.len() {
            let t = tasks[done].clone();
            return Ok(PlannerDecision::Act {
                thought: t.thought,
                tool: t.tool,
                args: t.args,
            });
        }
        if tasks.is_empty() {
            return Ok(PlannerDecision::Finish {
                thought: "The message does not map to any Palimpzest operation.".into(),
                answer: "I can load datasets, build filters and extraction schemas, run the \
                         pipeline under a quality/cost/runtime policy, and report statistics. \
                         What would you like to do?"
                    .into(),
            });
        }
        let summary = history
            .iter()
            .filter(|s| s.action.is_some())
            .map(|s| {
                if s.failed {
                    format!("(failed: {})", s.observation)
                } else {
                    s.observation.clone()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        Ok(PlannerDecision::Finish {
            thought: format!("All {} planned action(s) are done.", tasks.len()),
            answer: summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_load_request() {
        let tasks = plan_tasks("please load the dataset of scientific papers from my folder");
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].tool, "register_dataset");
        assert_eq!(tasks[0].args["source"], "scientific-demo");
    }

    #[test]
    fn legal_and_realestate_sources_detected() {
        assert_eq!(
            plan_tasks("upload the legal discovery emails")[0].args["source"],
            "legal-demo"
        );
        assert_eq!(
            plan_tasks("load the real estate listings")[0].args["source"],
            "realestate-demo"
        );
    }

    #[test]
    fn figure4_decomposition() {
        // One utterance → filter + schema + convert (three tool calls).
        let tasks = plan_tasks(
            "I'm interested in papers that are about colorectal cancer, and for these papers, \
             extract whatever public dataset is used by the study",
        );
        let tools: Vec<&str> = tasks.iter().map(|t| t.tool.as_str()).collect();
        assert_eq!(tools, vec!["add_filter", "create_schema", "add_convert"]);
        assert!(tasks[0].args["predicate"]
            .as_str()
            .unwrap()
            .to_lowercase()
            .contains("colorectal cancer"));
        assert_eq!(tasks[1].args["schema_name"], "ClinicalData");
        let fields: Vec<&str> = tasks[1].args["field_names"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(fields, vec!["name", "description", "url"]);
        assert_eq!(tasks[2].args["cardinality"], "many");
    }

    #[test]
    fn explicit_field_list_parsed() {
        let tasks = plan_tasks("extract the sender, date and subject of each email");
        assert_eq!(tasks[0].tool, "create_schema");
        let fields: Vec<&str> = tasks[0].args["field_names"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(fields, vec!["sender", "date", "subject"]);
        assert_eq!(tasks[1].args["cardinality"], "one");
    }

    #[test]
    fn policy_and_run_in_one_clause() {
        let tasks = plan_tasks("run the pipeline with maximum quality");
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].tool, "set_policy");
        assert_eq!(tasks[0].args["policy"], "max_quality");
        assert_eq!(tasks[1].tool, "execute_pipeline");
    }

    #[test]
    fn cost_budget_parsed() {
        let tasks = plan_tasks("maximize quality while staying under 0.5 dollars");
        assert_eq!(tasks[0].tool, "set_policy");
        assert_eq!(tasks[0].args["cost_budget"], 0.5);
        let tasks = plan_tasks("best quality in under 120 seconds please");
        assert_eq!(tasks[0].args["time_budget"], 120.0);
    }

    #[test]
    fn stats_and_results_and_export() {
        assert_eq!(
            plan_tasks("how much did that cost?")[0].tool,
            "show_statistics"
        );
        assert_eq!(
            plan_tasks("how long did the run take?")[0].tool,
            "show_statistics"
        );
        assert_eq!(
            plan_tasks("show me the extracted records")[0].tool,
            "show_records"
        );
        assert_eq!(
            plan_tasks("download the notebook")[0].tool,
            "export_notebook"
        );
        assert_eq!(plan_tasks("let's start over")[0].tool, "reset_pipeline");
    }

    #[test]
    fn quoted_predicate_wins() {
        let tasks = plan_tasks(r#"filter for "modern homes with a garden""#);
        assert_eq!(tasks[0].args["predicate"], "modern homes with a garden");
    }

    #[test]
    fn lead_in_phrases_stripped() {
        let tasks = plan_tasks("I am interested in emails discussing the acme merger");
        assert_eq!(
            tasks[0].args["predicate"],
            "Emails discussing the acme merger"
        );
    }

    #[test]
    fn unknown_message_plans_nothing() {
        assert!(
            plan_tasks("how is the weather today").is_empty() ||
            // "about" may weakly fire the filter intent; either no plan or a
            // single harmless filter is acceptable for nonsense input — but
            // "how is the weather today" must not register datasets or run.
            plan_tasks("how is the weather today").iter().all(|t| t.tool != "execute_pipeline")
        );
    }

    #[test]
    fn snapshot_intents() {
        assert_eq!(
            plan_tasks("save a checkpoint of the notebook")[0].tool,
            "snapshot_notebook"
        );
        let t = plan_tasks("restore the notebook to snapshot 2");
        assert_eq!(t[0].tool, "restore_notebook");
        assert_eq!(t[0].args["snapshot"], 2);
    }

    #[test]
    fn classify_intent() {
        let tasks =
            plan_tasks("categorize the emails into merger business, office chatter and other");
        assert_eq!(tasks[0].tool, "add_classify");
        let labels: Vec<&str> = tasks[0].args["labels"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(labels, vec!["merger business", "office chatter", "other"]);
    }

    #[test]
    fn retrieve_and_limit_intents() {
        let tasks = plan_tasks("find the 5 most relevant papers about gene therapy treatments");
        assert_eq!(tasks[0].tool, "add_retrieve");
        assert_eq!(tasks[0].args["k"], 5);
        assert_eq!(tasks[0].args["query"], "gene therapy treatments");

        let tasks = plan_tasks("only process the first 3 papers");
        assert_eq!(tasks[0].tool, "add_limit");
        assert_eq!(tasks[0].args["n"], 3);
    }

    #[test]
    fn field_name_normalization() {
        assert_eq!(to_field_name("dataset name"), "dataset_name");
        assert_eq!(to_field_name(" URL "), "url");
        assert_eq!(to_field_name("the price"), "price");
    }

    #[test]
    fn multi_clause_sequencing() {
        let tasks = plan_tasks(
            "load the scientific papers; I'm interested in papers about colorectal cancer; \
             run the pipeline with minimum cost",
        );
        let tools: Vec<&str> = tasks.iter().map(|t| t.tool.as_str()).collect();
        assert_eq!(
            tools,
            vec![
                "register_dataset",
                "add_filter",
                "set_policy",
                "execute_pipeline"
            ]
        );
    }
}
