//! Notebook state — the Beaker stand-in (substitution S5).
//!
//! §2.3: Beaker "incorporates an AI agent that facilitates code generation
//! and execution while maintaining awareness of the complete notebook
//! state [...] along with comprehensive state management that allows users
//! to restore previous notebook states." This module reproduces the
//! functional core: an ordered cell list carrying every generated snippet,
//! snapshot/restore, and a JSON export ("downloading a Jupyter notebook
//! that contains all inputs and generated snippets of code", §3).

use serde::{Deserialize, Serialize};

/// What a cell contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    /// User/agent narration.
    Markdown,
    /// Generated pipeline code.
    Code,
    /// Execution output (records, statistics).
    Output,
}

/// One notebook cell.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    pub kind: CellKind,
    pub source: String,
}

/// The notebook: ordered cells plus saved snapshots.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Notebook {
    pub cells: Vec<Cell>,
    #[serde(skip)]
    snapshots: Vec<Vec<Cell>>,
}

impl Notebook {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push_markdown(&mut self, source: impl Into<String>) {
        self.cells.push(Cell {
            kind: CellKind::Markdown,
            source: source.into(),
        });
    }

    pub fn push_code(&mut self, source: impl Into<String>) {
        self.cells.push(Cell {
            kind: CellKind::Code,
            source: source.into(),
        });
    }

    pub fn push_output(&mut self, source: impl Into<String>) {
        self.cells.push(Cell {
            kind: CellKind::Output,
            source: source.into(),
        });
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Save the current state; returns the snapshot id.
    pub fn snapshot(&mut self) -> usize {
        self.snapshots.push(self.cells.clone());
        self.snapshots.len() - 1
    }

    /// Restore a previous state. Returns false for unknown ids.
    pub fn restore(&mut self, id: usize) -> bool {
        match self.snapshots.get(id) {
            Some(cells) => {
                self.cells = cells.clone();
                true
            }
            None => false,
        }
    }

    /// All code cells concatenated — the "final code generated" of Figure 6.
    pub fn code(&self) -> String {
        self.cells
            .iter()
            .filter(|c| c.kind == CellKind::Code)
            .map(|c| c.source.as_str())
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// Export as nbformat-flavoured JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "nbformat": 4,
            "nbformat_minor": 5,
            "metadata": { "kernel": "palimpzest-rust" },
            "cells": self.cells.iter().map(|c| {
                serde_json::json!({
                    "cell_type": match c.kind {
                        CellKind::Markdown => "markdown",
                        CellKind::Code => "code",
                        CellKind::Output => "raw",
                    },
                    "source": c.source,
                })
            }).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_accumulate_in_order() {
        let mut nb = Notebook::new();
        nb.push_markdown("intro");
        nb.push_code("let x = 1;");
        nb.push_output("1 record");
        assert_eq!(nb.len(), 3);
        assert_eq!(nb.cells[0].kind, CellKind::Markdown);
        assert_eq!(nb.cells[1].kind, CellKind::Code);
        assert_eq!(nb.cells[2].kind, CellKind::Output);
    }

    #[test]
    fn snapshot_restore() {
        let mut nb = Notebook::new();
        nb.push_code("a");
        let snap = nb.snapshot();
        nb.push_code("b");
        assert_eq!(nb.len(), 2);
        assert!(nb.restore(snap));
        assert_eq!(nb.len(), 1);
        assert!(!nb.restore(99));
    }

    #[test]
    fn code_concatenates_code_cells_only() {
        let mut nb = Notebook::new();
        nb.push_markdown("not code");
        nb.push_code("line1");
        nb.push_code("line2");
        assert_eq!(nb.code(), "line1\n\nline2");
    }

    #[test]
    fn json_export_shape() {
        let mut nb = Notebook::new();
        nb.push_code("x");
        let j = nb.to_json();
        assert_eq!(j["nbformat"], 4);
        assert_eq!(j["cells"][0]["cell_type"], "code");
        assert_eq!(j["cells"][0]["source"], "x");
    }

    #[test]
    fn empty_notebook() {
        let nb = Notebook::new();
        assert!(nb.is_empty());
        assert_eq!(nb.code(), "");
        assert_eq!(nb.to_json()["cells"].as_array().unwrap().len(), 0);
    }
}
