//! Session state shared by every chat tool.

use crate::notebook::Notebook;
use parking_lot::Mutex;
use pz_core::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Mutable state of one PalimpChat session.
pub struct SessionState {
    /// The Palimpzest runtime.
    pub ctx: PzContext,
    /// The currently selected input dataset (registry name).
    pub dataset: Option<String>,
    /// Schemas created during the session (`create_schema` results).
    pub schemas: BTreeMap<String, Schema>,
    /// Pipeline operators appended so far (after the scan).
    pub pending_ops: Vec<LogicalOp>,
    /// Optimization preference for the next execution.
    pub policy: Policy,
    /// Worker threads for execution.
    pub workers: usize,
    /// Outcome of the most recent execution.
    pub last_outcome: Option<ExecutionOutcome>,
    /// The Beaker-style notebook accumulating generated snippets.
    pub notebook: Notebook,
}

impl SessionState {
    pub fn new(ctx: PzContext) -> Self {
        Self {
            ctx,
            dataset: None,
            schemas: BTreeMap::new(),
            pending_ops: Vec::new(),
            policy: Policy::MaxQuality,
            workers: 1,
            last_outcome: None,
            notebook: Notebook::new(),
        }
    }

    /// Build the current logical plan (scan + pending ops).
    pub fn current_plan(&self) -> PzResult<LogicalPlan> {
        let dataset = self
            .dataset
            .clone()
            .ok_or_else(|| PzError::Plan("no dataset registered yet".into()))?;
        let mut ops = vec![LogicalOp::Scan { dataset }];
        ops.extend(self.pending_ops.iter().cloned());
        LogicalPlan::new(ops)
    }

    /// Drop the pipeline under construction (keeps dataset + schemas).
    pub fn reset_pipeline(&mut self) {
        self.pending_ops.clear();
        self.last_outcome = None;
    }
}

/// Shared handle passed to tools.
pub type SessionHandle = Arc<Mutex<SessionState>>;

/// Create a fresh simulated session.
pub fn new_session() -> SessionHandle {
    Arc::new(Mutex::new(SessionState::new(PzContext::simulated())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_requires_dataset() {
        let s = SessionState::new(PzContext::simulated());
        assert!(s.current_plan().is_err());
    }

    #[test]
    fn plan_includes_pending_ops() {
        let mut s = SessionState::new(PzContext::simulated());
        s.dataset = Some("demo".into());
        s.pending_ops.push(LogicalOp::Filter {
            predicate: FilterPredicate::NaturalLanguage("x".into()),
        });
        let plan = s.current_plan().unwrap();
        assert_eq!(plan.ops.len(), 2);
        assert_eq!(plan.dataset(), "demo");
    }

    #[test]
    fn reset_clears_ops_but_keeps_dataset() {
        let mut s = SessionState::new(PzContext::simulated());
        s.dataset = Some("demo".into());
        s.pending_ops.push(LogicalOp::Limit { n: 1 });
        s.reset_pipeline();
        assert!(s.pending_ops.is_empty());
        assert_eq!(s.dataset.as_deref(), Some("demo"));
    }
}
