//! # palimpchat — declarative and interactive AI analytics through chat
//!
//! The top of the stack (paper §2.3): "The PalimpChat interface integrates
//! Palimpzest with Archytas by exposing a series of tools that the
//! LLM-based agent can leverage. Essentially, these tools correspond to
//! templated code snippets that can 1. perform fundamental Palimpzest
//! operations (e.g., registering a dataset, generating schemas, filtering
//! records) and 2. orchestrate entire pipelines of transformations."
//!
//! * [`session`] — the shared session state every tool mutates: registered
//!   datasets, schemas, the pipeline under construction, the policy, the
//!   last execution outcome, and the notebook;
//! * [`tools`] — the Palimpzest tool suite (Figure 2's `create_schema` and
//!   friends);
//! * [`planner`] — the domain reasoner that turns a chat utterance into a
//!   sequence of tool invocations (Figure 4);
//! * [`notebook`] — the Beaker stand-in: cell model, state snapshots, JSON
//!   export (substitution S5);
//! * [`codegen`] — emits the final pipeline code (Figure 6);
//! * [`chat`] — the conversation facade used by the REPL binary and the
//!   examples.

pub mod chat;
pub mod codegen;
pub mod notebook;
pub mod planner;
pub mod session;
pub mod tools;

pub use chat::{ChatResponse, PalimpChat};
pub use notebook::{Cell, CellKind, Notebook};
pub use planner::PalimpPlanner;
pub use session::{SessionHandle, SessionState};
