//! Real-estate search corpus (third demo scenario, paper abstract).
//!
//! Listings with structured attributes (address, price, bedrooms) and a
//! prose description. The demo filter is a *subjective* natural-language
//! predicate ("modern homes with a garden") — the kind of condition only an
//! LLM-based filter can evaluate — combined with a conventional numeric
//! filter on price, exercising the mixed LLM/relational pipelines the paper
//! emphasizes.

use crate::text::{Prng, Topic};
use crate::Document;
use serde::{Deserialize, Serialize};

/// The demo's semantic filter.
pub const FILTER_PREDICATE: &str = "The listings describe modern homes with a garden";

const STREETS: &[&str] = &[
    "Maple Street",
    "Harborview Road",
    "Birchwood Lane",
    "Commonwealth Avenue",
    "Juniper Court",
    "Windmill Terrace",
    "Granite Way",
    "Silver Birch Drive",
];

const CITIES: &[&str] = &[
    "Cambridge",
    "Somerville",
    "Brookline",
    "Medford",
    "Arlington",
];

const MODERN_TOPIC: Topic = Topic {
    name: "modern-home",
    subjects: &[
        "this modern home",
        "the newly renovated modern home",
        "this sleek contemporary modern home",
    ],
    verbs: &["features", "offers", "showcases"],
    objects: &[
        "an open floor plan with floor to ceiling windows",
        "a chef kitchen with smart appliances",
        "polished concrete floors and minimalist finishes",
    ],
    modifiers: &[
        "steps from the park",
        "with solar panels included",
        "and radiant heating throughout",
    ],
};

const CLASSIC_TOPIC: Topic = Topic {
    name: "classic-home",
    subjects: &[
        "this charming victorian property",
        "the classic colonial house",
        "this historic brick residence",
    ],
    verbs: &["retains", "preserves", "boasts"],
    objects: &[
        "original hardwood details and crown molding",
        "a traditional fireplace and formal dining room",
        "period woodwork and stained glass",
    ],
    modifiers: &[
        "on a quiet street",
        "near the historic district",
        "with classic curb appeal",
    ],
};

const GARDEN_SENTENCE: &str =
    "The landscaped garden offers mature trees, a patio, and raised flower beds.";
const NO_GARDEN_SENTENCE: &str = "A shared rooftop deck and a private garage complete the package.";

/// Ground truth for one listing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ListingTruth {
    pub id: String,
    pub address: String,
    pub price_usd: u64,
    pub bedrooms: u32,
    pub modern: bool,
    pub has_garden: bool,
}

impl ListingTruth {
    /// Truth for the demo's combined predicate: modern AND garden.
    pub fn matches_semantic_filter(&self) -> bool {
        self.modern && self.has_garden
    }
}

/// Corpus-level truth.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RealEstateTruth {
    pub listings: Vec<ListingTruth>,
}

impl RealEstateTruth {
    pub fn semantic_flags(&self) -> Vec<bool> {
        self.listings
            .iter()
            .map(|l| l.matches_semantic_filter())
            .collect()
    }

    pub fn matching_count(&self) -> usize {
        self.listings
            .iter()
            .filter(|l| l.matches_semantic_filter())
            .count()
    }
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct RealEstateConfig {
    pub n_listings: usize,
    pub modern_fraction: f64,
    pub garden_fraction: f64,
    pub seed: u64,
}

impl Default for RealEstateConfig {
    fn default() -> Self {
        Self {
            n_listings: 40,
            modern_fraction: 0.5,
            garden_fraction: 0.5,
            seed: 31,
        }
    }
}

/// Generate a listing corpus.
pub fn generate(cfg: RealEstateConfig) -> (Vec<Document>, RealEstateTruth) {
    let mut rng = Prng::new(cfg.seed);
    let mut docs = Vec::with_capacity(cfg.n_listings);
    let mut truth = RealEstateTruth::default();
    for i in 0..cfg.n_listings {
        let id = format!("listing-{i:04}");
        let modern = rng.unit() < cfg.modern_fraction;
        let has_garden = rng.unit() < cfg.garden_fraction;
        let address = format!(
            "{} {}, {}",
            rng.range(1, 200),
            rng.pick(STREETS),
            rng.pick(CITIES)
        );
        let price_usd = (rng.range(450, 3200) * 1000) as u64;
        let bedrooms = rng.range(1, 6) as u32;
        let topic = if modern {
            &MODERN_TOPIC
        } else {
            &CLASSIC_TOPIC
        };
        let garden_line = if has_garden {
            GARDEN_SENTENCE
        } else {
            NO_GARDEN_SENTENCE
        };
        let description = format!("{} {}", topic.paragraph(&mut rng, 2), garden_line);
        let content = format!(
            "Address: {address}\nPrice: {price_usd}\nBedrooms: {bedrooms}\nDescription: {description}\n"
        );
        docs.push(Document::new(id.clone(), format!("{id}.txt"), content));
        truth.listings.push(ListingTruth {
            id,
            address,
            price_usd,
            bedrooms,
            modern,
            has_garden,
        });
    }
    (docs, truth)
}

/// Fixed demo corpus: 20 listings.
pub fn demo_corpus() -> (Vec<Document>, RealEstateTruth) {
    generate(RealEstateConfig {
        n_listings: 20,
        seed: 0xE57A7E,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_is_deterministic_with_matches() {
        let (docs, truth) = demo_corpus();
        assert_eq!(docs.len(), 20);
        let m = truth.matching_count();
        assert!(m > 0 && m < 20, "need a non-trivial match set, got {m}");
        assert_eq!(demo_corpus().0, docs);
    }

    #[test]
    fn structured_fields_rendered() {
        let (docs, truth) = generate(RealEstateConfig::default());
        for (d, t) in docs.iter().zip(&truth.listings) {
            assert!(d.content.contains(&format!("Address: {}", t.address)));
            assert!(d.content.contains(&format!("Price: {}", t.price_usd)));
            assert!(d.content.contains(&format!("Bedrooms: {}", t.bedrooms)));
        }
    }

    #[test]
    fn modern_vocabulary_tracks_truth() {
        let (docs, truth) = generate(RealEstateConfig::default());
        for (d, t) in docs.iter().zip(&truth.listings) {
            let lower = d.content.to_lowercase();
            assert_eq!(
                t.modern,
                lower.contains("modern") || lower.contains("contemporary"),
                "{}",
                t.id
            );
        }
    }

    #[test]
    fn garden_vocabulary_tracks_truth() {
        let (docs, truth) = generate(RealEstateConfig::default());
        for (d, t) in docs.iter().zip(&truth.listings) {
            assert_eq!(t.has_garden, d.content.contains("garden"), "{}", t.id);
        }
    }

    #[test]
    fn price_range_sane() {
        let (_, truth) = generate(RealEstateConfig {
            n_listings: 100,
            ..Default::default()
        });
        for t in &truth.listings {
            assert!((450_000..=3_200_000).contains(&t.price_usd));
            assert!((1..=6).contains(&t.bedrooms));
        }
    }

    #[test]
    fn semantic_filter_is_conjunction() {
        let t = ListingTruth {
            id: "x".into(),
            address: "a".into(),
            price_usd: 1,
            bedrooms: 1,
            modern: true,
            has_garden: false,
        };
        assert!(!t.matches_semantic_filter());
        let t2 = ListingTruth {
            has_garden: true,
            ..t
        };
        assert!(t2.matches_semantic_filter());
    }
}
