//! Ground truth and quality scoring.
//!
//! The paper validated its scientific-discovery output "manually". The
//! reproduction keeps machine-checkable truth alongside every generated
//! corpus, and scores pipeline output with standard set-based precision /
//! recall / F1. These scores are what the optimizer's *quality* dimension
//! (E3) and sentinel calibration (E9) are measured against.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A dataset mention planted in a paper (the extraction target of E1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetMention {
    pub name: String,
    pub description: String,
    pub url: String,
}

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PrF1 {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub true_positives: usize,
    pub predicted: usize,
    pub expected: usize,
}

impl PrF1 {
    /// Compute from counts. Empty-vs-empty scores a perfect 1.0 (nothing to
    /// find, nothing found).
    pub fn from_counts(true_positives: usize, predicted: usize, expected: usize) -> Self {
        let precision = if predicted == 0 {
            if expected == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            true_positives as f64 / predicted as f64
        };
        let recall = if expected == 0 {
            1.0
        } else {
            true_positives as f64 / expected as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            true_positives,
            predicted,
            expected,
        }
    }
}

/// Normalize a value for fuzzy set comparison: lowercase, alphanumeric runs
/// separated by single spaces.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

/// Score predicted strings against expected strings as normalized sets.
pub fn score_string_sets(predicted: &[String], expected: &[String]) -> PrF1 {
    let p: BTreeSet<String> = predicted.iter().map(|s| normalize(s)).collect();
    let e: BTreeSet<String> = expected.iter().map(|s| normalize(s)).collect();
    let tp = p.intersection(&e).count();
    PrF1::from_counts(tp, p.len(), e.len())
}

/// Score extracted `(name, url)` pairs against expected dataset mentions.
/// A prediction counts as a true positive when the normalized name matches
/// *and* the URL matches exactly (the paper verified URL validity by hand;
/// we verify it mechanically).
pub fn score_dataset_extractions(
    predicted: &[(Option<String>, Option<String>)],
    expected: &[DatasetMention],
) -> PrF1 {
    let truth: BTreeSet<(String, String)> = expected
        .iter()
        .map(|m| (normalize(&m.name), m.url.clone()))
        .collect();
    let mut tp = 0usize;
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (name, url) in predicted {
        if let (Some(n), Some(u)) = (name, url) {
            let key = (normalize(n), u.clone());
            if truth.contains(&key) && seen.insert(key) {
                tp += 1;
            }
        }
    }
    PrF1::from_counts(tp, predicted.len(), expected.len())
}

/// Score a boolean classification (e.g. a filter decision) against truth.
/// Items are matched positionally.
pub fn score_boolean(predicted: &[bool], expected: &[bool]) -> PrF1 {
    assert_eq!(predicted.len(), expected.len(), "length mismatch");
    let tp = predicted
        .iter()
        .zip(expected)
        .filter(|(p, e)| **p && **e)
        .count();
    let predicted_pos = predicted.iter().filter(|p| **p).count();
    let expected_pos = expected.iter().filter(|e| **e).count();
    PrF1::from_counts(tp, predicted_pos, expected_pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_score() {
        let m = PrF1::from_counts(5, 5, 5);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn empty_vs_empty_is_perfect() {
        let m = PrF1::from_counts(0, 0, 0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn nothing_found_is_zero_recall() {
        let m = PrF1::from_counts(0, 0, 4);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn half_and_half() {
        let m = PrF1::from_counts(2, 4, 4);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert!((m.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_collapses_punctuation_and_case() {
        assert_eq!(normalize("TCGA-COADREAD"), "tcga coadread");
        assert_eq!(normalize("  The  Dataset!! "), "the dataset");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn string_set_scoring() {
        let m = score_string_sets(
            &["TCGA-COAD".into(), "bogus".into()],
            &["tcga coad".into(), "GSE39582".into()],
        );
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.predicted, 2);
        assert_eq!(m.expected, 2);
    }

    #[test]
    fn dataset_extraction_scoring_requires_url_match() {
        let truth = vec![DatasetMention {
            name: "TCGA-COADREAD".into(),
            description: "cohort".into(),
            url: "https://portal.gdc.cancer.gov/x".into(),
        }];
        // Right name, right URL.
        let good = vec![(
            Some("tcga coadread".to_string()),
            Some("https://portal.gdc.cancer.gov/x".to_string()),
        )];
        assert_eq!(score_dataset_extractions(&good, &truth).true_positives, 1);
        // Right name, corrupted URL: not a true positive.
        let bad = vec![(
            Some("tcga coadread".to_string()),
            Some("https://example.org/ffff".to_string()),
        )];
        assert_eq!(score_dataset_extractions(&bad, &truth).true_positives, 0);
        // Missing URL: not a true positive.
        let none = vec![(Some("tcga coadread".to_string()), None)];
        assert_eq!(score_dataset_extractions(&none, &truth).true_positives, 0);
    }

    #[test]
    fn duplicate_predictions_count_once() {
        let truth = vec![DatasetMention {
            name: "A".into(),
            description: String::new(),
            url: "https://a".into(),
        }];
        let dup = vec![
            (Some("A".to_string()), Some("https://a".to_string())),
            (Some("a".to_string()), Some("https://a".to_string())),
        ];
        let m = score_dataset_extractions(&dup, &truth);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.predicted, 2);
        assert!(m.precision < 1.0);
    }

    #[test]
    fn boolean_scoring() {
        let m = score_boolean(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.predicted, 2);
        assert_eq!(m.expected, 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn boolean_scoring_length_mismatch_panics() {
        score_boolean(&[true], &[true, false]);
    }
}
