//! Seeded many-tenant traffic generation for serving load tests.
//!
//! Emits a deterministic *description* of a serving workload — which
//! tenants exist, their scheduler weights, and the sessions each submits
//! (interactive chat turns vs batch analytics jobs, each over its own
//! salted corpus seed). The serving harness materializes the corpora with
//! [`crate::science::generate`] and builds pipelines from the specs; this
//! module stays plain data so it can be serialized into bench configs.
//!
//! Per-session corpus seeds are distinct by construction (tenant × session
//! salted into the master seed), which keeps concurrent sessions from
//! deduplicating each other's prompts through a shared response cache —
//! exactly the property the differential isolation tests need for
//! byte-identical solo-vs-concurrent cost parity.

use crate::text::Prng;
use serde::{Deserialize, Serialize};

/// Shape of a generated serving workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Number of tenants.
    pub tenants: usize,
    /// Sessions each tenant submits.
    pub sessions_per_tenant: usize,
    /// Fraction of tenants that are interactive (chat): higher scheduler
    /// weight, small corpora, tight deadlines. The rest are batch: weight
    /// 1, larger corpora, no deadline.
    pub interactive_fraction: f64,
    /// Documents per interactive session (batch sessions get 4×).
    pub docs_per_session: usize,
    /// Virtual-seconds deadline attached to interactive sessions.
    pub interactive_deadline_secs: f64,
    /// Master seed; every derived seed is a pure function of it.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            tenants: 4,
            sessions_per_tenant: 3,
            interactive_fraction: 0.5,
            docs_per_session: 6,
            interactive_deadline_secs: 600.0,
            seed: 17,
        }
    }
}

/// One session a tenant will submit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Unique name, e.g. `tenant-01/s002`.
    pub session: String,
    /// Seed for this session's private corpus — distinct across every
    /// (tenant, session) pair.
    pub corpus_seed: u64,
    /// Corpus size for this session.
    pub n_docs: usize,
    /// Deadline in virtual seconds, if latency-sensitive.
    pub deadline_secs: Option<f64>,
}

/// One tenant's slice of the workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantTraffic {
    /// Stable id, e.g. `tenant-01`.
    pub id: String,
    /// Scheduler weight (interactive tenants 4.0, batch 1.0).
    pub weight: f64,
    /// Whether this tenant's sessions are interactive chat turns.
    pub interactive: bool,
    pub sessions: Vec<SessionSpec>,
}

/// A full serving workload description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficPlan {
    pub tenants: Vec<TenantTraffic>,
}

impl TrafficPlan {
    /// Total sessions across all tenants.
    pub fn total_sessions(&self) -> usize {
        self.tenants.iter().map(|t| t.sessions.len()).sum()
    }

    /// Sessions flattened to `(tenant_index, session_index)` submission
    /// order, interleaved round-robin so no tenant's block submits first.
    pub fn round_robin(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.total_sessions());
        let max = self
            .tenants
            .iter()
            .map(|t| t.sessions.len())
            .max()
            .unwrap_or(0);
        for s in 0..max {
            for (t, tenant) in self.tenants.iter().enumerate() {
                if s < tenant.sessions.len() {
                    out.push((t, s));
                }
            }
        }
        out
    }
}

/// Generate a deterministic traffic plan. Pure function of `cfg`.
pub fn generate(cfg: TrafficConfig) -> TrafficPlan {
    let mut rng = Prng::new(cfg.seed ^ 0x7261_6666_6963_3137);
    let interactive_count = ((cfg.tenants as f64) * cfg.interactive_fraction).round() as usize;
    let mut tenants = Vec::with_capacity(cfg.tenants);
    for t in 0..cfg.tenants {
        let interactive = t < interactive_count;
        let id = format!("tenant-{t:02}");
        let mut sessions = Vec::with_capacity(cfg.sessions_per_tenant);
        for s in 0..cfg.sessions_per_tenant {
            // Salt the corpus seed with tenant and session indices so no
            // two sessions anywhere share one (rng.next keeps plans with
            // different master seeds fully decorrelated).
            let corpus_seed = rng
                .next_u64()
                .wrapping_add((t as u64) << 32)
                .wrapping_add(s as u64 + 1);
            sessions.push(SessionSpec {
                session: format!("{id}/s{s:03}"),
                corpus_seed,
                n_docs: if interactive {
                    cfg.docs_per_session
                } else {
                    cfg.docs_per_session * 4
                },
                deadline_secs: interactive.then_some(cfg.interactive_deadline_secs),
            });
        }
        tenants.push(TenantTraffic {
            id,
            weight: if interactive { 4.0 } else { 1.0 },
            interactive,
            sessions,
        });
    }
    TrafficPlan { tenants }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TrafficConfig::default());
        let b = generate(TrafficConfig::default());
        assert_eq!(a, b);
        let c = generate(TrafficConfig {
            seed: 18,
            ..TrafficConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_seeds_are_unique_across_all_sessions() {
        let plan = generate(TrafficConfig {
            tenants: 8,
            sessions_per_tenant: 16,
            ..TrafficConfig::default()
        });
        let seeds: HashSet<u64> = plan
            .tenants
            .iter()
            .flat_map(|t| t.sessions.iter().map(|s| s.corpus_seed))
            .collect();
        assert_eq!(seeds.len(), plan.total_sessions());
    }

    #[test]
    fn interactive_split_and_weights() {
        let plan = generate(TrafficConfig {
            tenants: 4,
            interactive_fraction: 0.5,
            ..TrafficConfig::default()
        });
        let interactive: Vec<_> = plan.tenants.iter().filter(|t| t.interactive).collect();
        assert_eq!(interactive.len(), 2);
        for t in &plan.tenants {
            assert_eq!(t.weight, if t.interactive { 4.0 } else { 1.0 });
            for s in &t.sessions {
                assert_eq!(s.deadline_secs.is_some(), t.interactive);
                if !t.interactive {
                    assert_eq!(s.n_docs, TrafficConfig::default().docs_per_session * 4);
                }
            }
        }
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let plan = generate(TrafficConfig {
            tenants: 3,
            sessions_per_tenant: 2,
            ..TrafficConfig::default()
        });
        assert_eq!(
            plan.round_robin(),
            vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]
        );
    }
}
