//! # pz-datagen — synthetic corpora with ground truth
//!
//! Substitution **S2** from DESIGN.md. The PalimpChat demo runs on three
//! datasets we cannot redistribute: a digital library of biomedical PDFs, a
//! legal-discovery corpus, and real-estate listings. This crate generates
//! synthetic stand-ins with the same statistical shape *plus ground-truth
//! labels*, so the reproduction can measure output quality (precision /
//! recall / F1) instead of eyeballing it.
//!
//! Three corpora, one per demo scenario (paper §1, §3):
//!
//! * [`science`] — scientific papers; some about colorectal cancer, some
//!   with embedded public-dataset mentions (name / description / URL). The
//!   fixed [`science::demo_corpus`] reproduces the paper's E1 workload:
//!   11 papers of which the relevant ones carry 6 extractable datasets.
//! * [`legal`] — e-mail corpus for legal discovery: responsive vs
//!   non-responsive messages, attorney-client-privileged threads, party and
//!   date metadata.
//! * [`realestate`] — listing corpus: address, price, bedrooms, and a prose
//!   description; ground truth for NL predicates like "modern and under two
//!   million dollars".
//!
//! All generation is a pure function of the config (including its seed).
//! [`stream`] additionally makes each document a pure function of
//! `(seed, index)` so million-record corpora can be yielded lazily with no
//! giant allocation — the substrate for the out-of-core `Scan`.

pub mod edits;
pub mod legal;
pub mod realestate;
pub mod science;
pub mod stream;
pub mod text;
pub mod traffic;
pub mod truth;

use serde::{Deserialize, Serialize};

/// One unstructured input document, the unit Palimpzest datasets iterate
/// over. `filename` mimics the directory-of-files input mode from Figure 3.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// Stable unique id within the corpus, e.g. `paper-003`.
    pub id: String,
    /// Simulated filename, e.g. `paper-003.pdf`.
    pub filename: String,
    /// Full text content.
    pub content: String,
}

impl Document {
    pub fn new(
        id: impl Into<String>,
        filename: impl Into<String>,
        content: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            filename: filename.into(),
            content: content.into(),
        }
    }
}

/// Write a corpus to a directory, one file per document (PDF-flavoured
/// documents get the simulated-PDF envelope so `DirectorySource` parsing
/// exercises the real code path). Returns the number of files written.
pub fn write_corpus_to_dir(docs: &[Document], dir: &std::path::Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    for d in docs {
        let content = if d.filename.ends_with(".pdf") {
            format!("%PDF-SIM\n{}\n%%EOF", d.content)
        } else {
            d.content.clone()
        };
        std::fs::write(dir.join(&d.filename), content)?;
    }
    Ok(docs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_corpus_round_trip() {
        let dir = std::env::temp_dir().join(format!("pz-corpus-{}", std::process::id()));
        let docs = vec![
            Document::new("a", "a.pdf", "pdf body"),
            Document::new("b", "b.txt", "txt body"),
        ];
        assert_eq!(write_corpus_to_dir(&docs, &dir).unwrap(), 2);
        let pdf = std::fs::read_to_string(dir.join("a.pdf")).unwrap();
        assert!(pdf.starts_with("%PDF-SIM"));
        assert!(pdf.contains("pdf body"));
        let txt = std::fs::read_to_string(dir.join("b.txt")).unwrap();
        assert_eq!(txt, "txt body");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn document_construction() {
        let d = Document::new("a", "a.pdf", "text");
        assert_eq!(d.id, "a");
        assert_eq!(d.filename, "a.pdf");
        assert_eq!(d.content, "text");
    }
}
