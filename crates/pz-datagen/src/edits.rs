//! Seeded edit scripts over a base corpus.
//!
//! Incremental execution (pz-core's `ExecutionSnapshot`) is exercised by
//! replaying *changes* to a dataset: appends, in-place updates, and
//! deletes. This module generates those change streams deterministically
//! from a seed, so the E19 append-latency experiment and the differential
//! proptest harness in `tests/tests/incremental.rs` share one source of
//! edits — same seed, same script, on any platform.

use crate::Document;

/// One edit to a corpus, keyed by filename (the stable record identity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Add a brand-new document.
    Append(Document),
    /// Rewrite the content of an existing document.
    Update { filename: String, content: String },
    /// Remove a document.
    Delete { filename: String },
}

/// A deterministic sequence of edit batches over a base corpus.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EditScript {
    /// Batches apply in order; each batch is one "run boundary" — the
    /// incremental executor re-runs once per batch.
    pub batches: Vec<Vec<EditOp>>,
}

impl EditScript {
    /// Total number of edit operations across all batches.
    pub fn len(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when every operation is an append — the memoized-prefix
    /// zero-cost guarantee only binds for pure-append scripts.
    pub fn is_pure_append(&self) -> bool {
        self.batches
            .iter()
            .flatten()
            .all(|op| matches!(op, EditOp::Append(_)))
    }
}

/// splitmix64: tiny, seedable, platform-stable. Good enough to pick edit
/// kinds and targets; no external RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const WORDS: &[&str] = &[
    "colorectal",
    "cancer",
    "cohort",
    "screening",
    "genomic",
    "dataset",
    "survival",
    "biomarker",
    "registry",
    "trial",
];

fn synth_content(rng: &mut u64, tag: &str) -> String {
    let n = 4 + (splitmix64(rng) % 8) as usize;
    let words: Vec<&str> = (0..n)
        .map(|_| WORDS[(splitmix64(rng) % WORDS.len() as u64) as usize])
        .collect();
    format!("Delta document {tag}. {}.", words.join(" "))
}

/// Generate `batches` batches of `ops_per_batch` edits over `base`,
/// deterministically from `seed`. Appends mint fresh `delta-NNN.pdf`
/// documents; updates and deletes target documents still live at the time
/// the op is generated (base or previously appended). When nothing is
/// live, the generator falls back to an append so every script has the
/// requested length.
pub fn edit_script(
    base: &[Document],
    seed: u64,
    batches: usize,
    ops_per_batch: usize,
) -> EditScript {
    let mut rng = seed ^ 0x0b5e_d17e_5eed_0001;
    let mut live: Vec<String> = base.iter().map(|d| d.filename.clone()).collect();
    let mut appended = 0usize;
    let mut script = EditScript::default();
    for _ in 0..batches {
        let mut batch = Vec::with_capacity(ops_per_batch);
        for _ in 0..ops_per_batch {
            let kind = splitmix64(&mut rng) % 4;
            // Bias toward appends (the headline incremental case): 2/4
            // append, 1/4 update, 1/4 delete.
            let op = match kind {
                0 | 1 => None,
                2 if !live.is_empty() => {
                    let i = (splitmix64(&mut rng) % live.len() as u64) as usize;
                    let filename = live[i].clone();
                    let content = synth_content(&mut rng, &format!("upd-{filename}"));
                    Some(EditOp::Update { filename, content })
                }
                3 if !live.is_empty() => {
                    let i = (splitmix64(&mut rng) % live.len() as u64) as usize;
                    let filename = live.remove(i);
                    Some(EditOp::Delete { filename })
                }
                _ => None,
            };
            let op = op.unwrap_or_else(|| {
                let id = format!("delta-{appended:03}");
                let filename = format!("{id}.pdf");
                appended += 1;
                live.push(filename.clone());
                EditOp::Append(Document {
                    content: synth_content(&mut rng, &id),
                    id,
                    filename,
                })
            });
            batch.push(op);
        }
        script.batches.push(batch);
    }
    script
}

/// A pure-append script: `batches` batches of `ops_per_batch` appends.
pub fn append_script(seed: u64, batches: usize, ops_per_batch: usize) -> EditScript {
    let mut rng = seed ^ 0x0b5e_d17e_5eed_0002;
    let mut script = EditScript::default();
    let mut k = 0usize;
    for _ in 0..batches {
        let mut batch = Vec::with_capacity(ops_per_batch);
        for _ in 0..ops_per_batch {
            let id = format!("delta-{k:03}");
            k += 1;
            batch.push(EditOp::Append(Document {
                content: synth_content(&mut rng, &id),
                id: id.clone(),
                filename: format!("{id}.pdf"),
            }));
        }
        script.batches.push(batch);
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<Document> {
        (0..5)
            .map(|i| Document {
                id: format!("doc-{i}"),
                filename: format!("doc-{i:03}.pdf"),
                content: format!("Document {i}."),
            })
            .collect()
    }

    #[test]
    fn same_seed_same_script() {
        let a = edit_script(&base(), 7, 3, 4);
        let b = edit_script(&base(), 7, 3, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(edit_script(&base(), 1, 2, 5), edit_script(&base(), 2, 2, 5));
    }

    #[test]
    fn deletes_target_live_documents_only() {
        let docs = base();
        let script = edit_script(&docs, 99, 4, 6);
        let mut live: Vec<String> = docs.iter().map(|d| d.filename.clone()).collect();
        for op in script.batches.iter().flatten() {
            match op {
                EditOp::Append(d) => live.push(d.filename.clone()),
                EditOp::Update { filename, .. } | EditOp::Delete { filename } => {
                    assert!(live.contains(filename), "edit targets dead doc {filename}");
                    if matches!(op, EditOp::Delete { .. }) {
                        live.retain(|f| f != filename);
                    }
                }
            }
        }
    }

    #[test]
    fn append_script_is_pure() {
        assert!(append_script(3, 2, 2).is_pure_append());
        assert!(!append_script(3, 2, 2).is_empty());
    }
}
