//! Deterministic text synthesis primitives.
//!
//! A tiny, dependency-free generator: a splitmix64 PRNG plus topic word
//! pools. Every corpus module builds its prose from these, so the whole
//! data layer is a pure function of the seed.

/// Deterministic PRNG (splitmix64). Small and reproducible across
/// platforms; corpora must never depend on `rand`'s version-specific
/// streams.
#[derive(Clone, Debug)]
pub struct Prng(u64);

impl Prng {
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform f64 in [0, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len())]
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }
}

/// A topic: themed word pools used to build sentences with a recognizable
/// vocabulary (which is what both the simulated LLM and the embedding model
/// key on).
#[derive(Clone, Copy, Debug)]
pub struct Topic {
    pub name: &'static str,
    pub subjects: &'static [&'static str],
    pub verbs: &'static [&'static str],
    pub objects: &'static [&'static str],
    pub modifiers: &'static [&'static str],
}

impl Topic {
    /// One grammatical-ish sentence from the topic's pools.
    pub fn sentence(&self, rng: &mut Prng) -> String {
        let subject = rng.pick(self.subjects);
        let verb = rng.pick(self.verbs);
        let object = rng.pick(self.objects);
        let modifier = rng.pick(self.modifiers);
        format!("{subject} {verb} {object} {modifier}.")
    }

    /// A paragraph of `n` sentences.
    pub fn paragraph(&self, rng: &mut Prng, n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&capitalize(&self.sentence(rng)));
        }
        out
    }
}

/// Capitalize the first ASCII letter of a sentence.
pub fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPIC: Topic = Topic {
        name: "test",
        subjects: &["the model", "our method"],
        verbs: &["improves", "analyzes"],
        objects: &["the benchmark", "the corpus"],
        modifiers: &["significantly", "at scale"],
    };

    #[test]
    fn prng_is_deterministic() {
        let mut a = Prng::new(5);
        let mut b = Prng::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn prng_differs_by_seed() {
        assert_ne!(Prng::new(1).next_u64(), Prng::new(2).next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut rng = Prng::new(3);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn unit_in_range() {
        let mut rng = Prng::new(4);
        for _ in 0..100 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = Prng::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200 {
            let v = rng.range(2, 4);
            assert!((2..=4).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn sentence_uses_topic_pools() {
        let mut rng = Prng::new(6);
        let s = TOPIC.sentence(&mut rng);
        assert!(s.ends_with('.'));
        assert!(
            s.contains("model") || s.contains("method"),
            "sentence should draw from subject pool: {s}"
        );
    }

    #[test]
    fn paragraph_has_n_sentences() {
        let mut rng = Prng::new(7);
        let p = TOPIC.paragraph(&mut rng, 4);
        assert_eq!(p.matches('.').count(), 4);
    }

    #[test]
    fn capitalize_works() {
        assert_eq!(capitalize("hello"), "Hello");
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("X"), "X");
    }
}
