//! Legal-discovery corpus (second demo scenario, paper abstract).
//!
//! An e-mail archive searched for messages *responsive* to a merger
//! investigation, with attorney-client-privileged threads that must be
//! flagged. Each message carries structured headers (From / To / Date /
//! Subject) the extraction schema pulls out, and a prose body whose
//! vocabulary decides responsiveness.

use crate::text::{capitalize, Prng, Topic};
use crate::Document;
use serde::{Deserialize, Serialize};

/// The demo filter: messages about the Acme–Initech merger.
pub const FILTER_PREDICATE: &str = "The emails discuss the acme initech merger";

/// Extra predicate used to separate privileged material.
pub const PRIVILEGE_PREDICATE: &str = "The emails contain privileged attorney client legal advice";

// Deal-team members write the responsive mail; the wider company mixes in
// off-topic traffic from other domains, so header addresses alone do not
// decide responsiveness.
const DEAL_PEOPLE: &[(&str, &str)] = &[
    ("alice.nguyen", "acme.com"),
    ("bob.feldman", "acme.com"),
    ("carol.diaz", "initech.com"),
    ("dmitri.petrov", "initech.com"),
    ("erin.walsh", "outsidecounsel.law"),
];

const OFFICE_PEOPLE: &[(&str, &str)] = &[
    ("frank.osei", "globex.com"),
    ("grace.kim", "soylent.com"),
    ("henry.ito", "globex.com"),
    ("iris.moreau", "umbrella.org"),
    ("jack.owens", "soylent.com"),
];

const MERGER_TOPIC: Topic = Topic {
    name: "merger",
    subjects: &[
        "the acme initech merger agreement",
        "the due diligence data room",
        "the merger valuation model",
        "the antitrust review for the acme initech deal",
    ],
    verbs: &["requires", "updates", "delays", "finalizes"],
    objects: &[
        "the disclosure schedules",
        "the share exchange ratio",
        "the integration timeline",
        "the regulatory filing",
    ],
    modifiers: &[
        "before the board meeting",
        "under the confidentiality agreement",
        "by end of quarter",
        "per the letter of intent",
    ],
};

const OFFTOPIC: Topic = Topic {
    name: "office",
    subjects: &[
        "the quarterly sales report",
        "the team offsite plan",
        "the new expense policy",
        "the cafeteria menu",
    ],
    verbs: &["covers", "announces", "changes", "schedules"],
    objects: &[
        "travel reimbursements",
        "the friday social",
        "printer upgrades",
        "parking permits",
    ],
    modifiers: &[
        "next week",
        "for all staff",
        "effective immediately",
        "in building two",
    ],
};

const PRIVILEGE_MARKER: &str =
    "This thread is attorney client privileged and contains confidential legal advice from counsel.";

/// Ground truth for one e-mail.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmailTruth {
    pub id: String,
    /// Responsive to the merger investigation?
    pub responsive: bool,
    /// Attorney-client privileged?
    pub privileged: bool,
    pub sender: String,
    pub recipient: String,
    pub date: String,
    pub subject: String,
}

/// Corpus-level truth, ordered like the documents.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LegalTruth {
    pub emails: Vec<EmailTruth>,
}

impl LegalTruth {
    pub fn responsive_flags(&self) -> Vec<bool> {
        self.emails.iter().map(|e| e.responsive).collect()
    }

    pub fn privileged_flags(&self) -> Vec<bool> {
        self.emails.iter().map(|e| e.privileged).collect()
    }

    pub fn responsive_count(&self) -> usize {
        self.emails.iter().filter(|e| e.responsive).count()
    }
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct LegalConfig {
    pub n_emails: usize,
    pub responsive_fraction: f64,
    /// Fraction of *responsive* mails that are privileged.
    pub privileged_fraction: f64,
    pub seed: u64,
}

impl Default for LegalConfig {
    fn default() -> Self {
        Self {
            n_emails: 60,
            responsive_fraction: 0.35,
            privileged_fraction: 0.3,
            seed: 23,
        }
    }
}

fn date_for(rng: &mut Prng) -> String {
    format!("2023-{:02}-{:02}", rng.range(1, 12), rng.range(1, 28))
}

/// Generate an e-mail corpus.
pub fn generate(cfg: LegalConfig) -> (Vec<Document>, LegalTruth) {
    let mut rng = Prng::new(cfg.seed);
    let mut docs = Vec::with_capacity(cfg.n_emails);
    let mut truth = LegalTruth::default();
    for i in 0..cfg.n_emails {
        let id = format!("email-{i:04}");
        let responsive = rng.unit() < cfg.responsive_fraction;
        let privileged = responsive && rng.unit() < cfg.privileged_fraction;
        let pool = if responsive {
            DEAL_PEOPLE
        } else {
            OFFICE_PEOPLE
        };
        let (sender_u, sender_d) = *rng.pick(pool);
        let (mut rcpt_u, mut rcpt_d) = *rng.pick(pool);
        while rcpt_u == sender_u {
            let p = *rng.pick(pool);
            rcpt_u = p.0;
            rcpt_d = p.1;
        }
        let sender = format!("{sender_u}@{sender_d}");
        let recipient = format!("{rcpt_u}@{rcpt_d}");
        let date = date_for(&mut rng);
        let topic = if responsive { &MERGER_TOPIC } else { &OFFTOPIC };
        let subject = capitalize(topic.sentence(&mut rng).trim_end_matches('.'));
        let n_sentences = rng.range(2, 5);
        let mut body = topic.paragraph(&mut rng, n_sentences);
        if privileged {
            body = format!("{PRIVILEGE_MARKER} {body}");
        }
        let content = format!(
            "From: {sender}\nTo: {recipient}\nDate: {date}\nSubject: {subject}\n\n{body}\n"
        );
        docs.push(Document::new(id.clone(), format!("{id}.eml"), content));
        truth.emails.push(EmailTruth {
            id,
            responsive,
            privileged,
            sender,
            recipient,
            date,
            subject,
        });
    }
    (docs, truth)
}

/// Fixed small corpus for the chat demo: 12 mails, 5 responsive of which 2
/// privileged.
pub fn demo_corpus() -> (Vec<Document>, LegalTruth) {
    // Search a seed once at authoring time? No — derive deterministically:
    // generate a slightly larger pool and take the first mails satisfying
    // the demo quota, preserving order.
    let (docs, truth) = generate(LegalConfig {
        n_emails: 64,
        responsive_fraction: 0.4,
        privileged_fraction: 0.45,
        seed: 0x1E6A,
    });
    let mut out_docs = Vec::new();
    let mut out_truth = LegalTruth::default();
    let (mut want_priv, mut want_resp, mut want_off) = (2usize, 3usize, 7usize);
    for (d, t) in docs.into_iter().zip(truth.emails) {
        let take = if t.privileged && want_priv > 0 {
            want_priv -= 1;
            true
        } else if t.responsive && !t.privileged && want_resp > 0 {
            want_resp -= 1;
            true
        } else if !t.responsive && want_off > 0 {
            want_off -= 1;
            true
        } else {
            false
        };
        if take {
            out_docs.push(d);
            out_truth.emails.push(t);
        }
    }
    assert_eq!(
        want_priv + want_resp + want_off,
        0,
        "seed pool exhausted before demo quota was met"
    );
    (out_docs, out_truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_corpus_quota() {
        let (docs, truth) = demo_corpus();
        assert_eq!(docs.len(), 12);
        assert_eq!(truth.responsive_count(), 5);
        assert_eq!(truth.privileged_flags().iter().filter(|p| **p).count(), 2);
    }

    #[test]
    fn headers_match_truth() {
        let (docs, truth) = generate(LegalConfig::default());
        for (d, t) in docs.iter().zip(&truth.emails) {
            assert!(d.content.contains(&format!("From: {}", t.sender)));
            assert!(d.content.contains(&format!("To: {}", t.recipient)));
            assert!(d.content.contains(&format!("Date: {}", t.date)));
            assert!(d.content.contains(&format!("Subject: {}", t.subject)));
        }
    }

    #[test]
    fn responsive_mails_mention_merger_vocabulary() {
        let (docs, truth) = generate(LegalConfig::default());
        for (d, t) in docs.iter().zip(&truth.emails) {
            let lower = d.content.to_lowercase();
            if t.responsive {
                assert!(
                    lower.contains("acme") || lower.contains("merger"),
                    "{} lacks merger vocabulary",
                    t.id
                );
            } else {
                assert!(!lower.contains("merger"), "{} should be off-topic", t.id);
            }
        }
    }

    #[test]
    fn privileged_mails_carry_marker() {
        let (docs, truth) = generate(LegalConfig {
            n_emails: 100,
            privileged_fraction: 1.0,
            ..Default::default()
        });
        for (d, t) in docs.iter().zip(&truth.emails) {
            assert_eq!(
                t.privileged,
                d.content.contains("attorney client privileged")
            );
        }
    }

    #[test]
    fn privilege_implies_responsive() {
        let (_, truth) = generate(LegalConfig {
            n_emails: 200,
            ..Default::default()
        });
        for t in &truth.emails {
            if t.privileged {
                assert!(t.responsive);
            }
        }
    }

    #[test]
    fn sender_differs_from_recipient() {
        let (_, truth) = generate(LegalConfig {
            n_emails: 100,
            ..Default::default()
        });
        for t in &truth.emails {
            assert_ne!(t.sender, t.recipient);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(LegalConfig::default()).0,
            generate(LegalConfig::default()).0
        );
    }
}
