//! Scientific-paper corpus (the paper's §3 use case).
//!
//! Medical researchers survey *colorectal cancer* literature and extract
//! references to publicly available datasets. The corpus mixes relevant
//! papers (colorectal-cancer studies, some carrying a "Data Availability"
//! section with dataset name / description / URL triples) with irrelevant
//! papers from other fields, including a *breast cancer* hard negative that
//! shares the word "cancer" but must not pass the filter.
//!
//! [`demo_corpus`] is the fixed 11-paper instance matching the paper's E1
//! numbers (6 extractable datasets among the relevant papers);
//! [`generate`] scales the same shape to arbitrary sizes for E8.

use crate::text::{Prng, Topic};
use crate::truth::DatasetMention;
use crate::Document;
use serde::{Deserialize, Serialize};

/// The natural-language filter used throughout the demo (Figure 6 line 5).
pub const FILTER_PREDICATE: &str = "The papers are about colorectal cancer";

/// Topic of relevant papers.
pub const CRC_TOPIC: Topic = Topic {
    name: "colorectal-cancer",
    subjects: &[
        "somatic gene mutation profiling",
        "the colorectal cancer cohort",
        "tumor cell sequencing",
        "our colorectal cancer screening study",
        "the KRAS mutation analysis",
    ],
    verbs: &[
        "reveals",
        "correlates with",
        "identifies",
        "characterizes",
        "quantifies",
    ],
    objects: &[
        "tumor progression in colorectal cancer patients",
        "microsatellite instability in colon tumor cells",
        "gene mutation burden across colorectal tumors",
        "survival outcomes for colorectal cancer",
        "epigenetic changes in colorectal adenocarcinoma",
    ],
    modifiers: &[
        "across large genomic cohorts",
        "using public proteomic datasets",
        "with high statistical power",
        "in stage II and III patients",
        "after chemotherapy treatment",
    ],
};

/// A hard negative: oncology vocabulary without "colorectal".
pub const BREAST_CANCER_TOPIC: Topic = Topic {
    name: "breast-cancer",
    subjects: &[
        "the breast cancer screening program",
        "HER2 receptor analysis",
        "mammography image review",
    ],
    verbs: &["detects", "stratifies", "predicts"],
    objects: &[
        "tumor subtypes in breast cancer patients",
        "recurrence risk after surgery",
        "hormone receptor status",
    ],
    modifiers: &[
        "in a national registry",
        "with deep learning",
        "across age groups",
    ],
};

/// Pool of plainly-irrelevant topics.
pub const OFF_TOPICS: &[Topic] = &[
    Topic {
        name: "astronomy",
        subjects: &[
            "the quasar survey",
            "our radio telescope pipeline",
            "spectral analysis",
        ],
        verbs: &["measures", "detects", "classifies"],
        objects: &[
            "redshift distributions",
            "galaxy cluster luminosity",
            "emission spectra",
        ],
        modifiers: &[
            "at high redshift",
            "in the southern sky",
            "with arcsecond precision",
        ],
    },
    Topic {
        name: "materials",
        subjects: &[
            "the solid electrolyte study",
            "our battery cathode analysis",
            "lattice simulation",
        ],
        verbs: &["improves", "characterizes", "models"],
        objects: &[
            "ionic conductivity",
            "charge cycling stability",
            "crystal defects",
        ],
        modifiers: &[
            "at room temperature",
            "over thousand cycles",
            "under strain",
        ],
    },
    Topic {
        name: "nlp",
        subjects: &[
            "the translation model",
            "our multilingual corpus",
            "the parser ensemble",
        ],
        verbs: &["outperforms", "aligns", "segments"],
        objects: &[
            "low resource language pairs",
            "sentence embeddings",
            "morphological analyses",
        ],
        modifiers: &[
            "on benchmark suites",
            "without supervision",
            "across domains",
        ],
    },
    Topic {
        name: "ecology",
        subjects: &[
            "the coral reef survey",
            "our acoustic monitoring",
            "species census modeling",
        ],
        verbs: &["tracks", "estimates", "maps"],
        objects: &[
            "biodiversity gradients",
            "habitat recovery",
            "population dynamics",
        ],
        modifiers: &[
            "after bleaching events",
            "in protected waters",
            "over decades",
        ],
    },
    Topic {
        name: "traffic",
        subjects: &[
            "the congestion model",
            "our sensor network",
            "route optimization",
        ],
        verbs: &["reduces", "predicts", "balances"],
        objects: &["commute delays", "intersection throughput", "vehicle flows"],
        modifiers: &[
            "during peak hours",
            "across the metro area",
            "with edge computing",
        ],
    },
];

/// Public CRC dataset pool planted into relevant papers.
pub const CRC_DATASETS: &[(&str, &str, &str)] = &[
    (
        "TCGA-COADREAD",
        "Colorectal adenocarcinoma multi omics cohort",
        "https://portal.gdc.cancer.gov/projects/TCGA-COADREAD",
    ),
    (
        "GSE39582",
        "Gene expression profiles of colon cancer tumors",
        "https://www.ncbi.nlm.nih.gov/geo/query/acc.cgi?acc=GSE39582",
    ),
    (
        "CPTAC-COAD",
        "Proteogenomic characterization of colon adenocarcinoma",
        "https://proteomics.cancer.gov/programs/cptac/colon",
    ),
    (
        "MSK-IMPACT-CRC",
        "Targeted sequencing of metastatic colorectal tumors",
        "https://www.cbioportal.org/study/summary?id=crc_msk_impact",
    ),
    (
        "ICGC-CRC-ES",
        "Whole genome sequences of colorectal cancer donors",
        "https://dcc.icgc.org/projects/COCA-CN",
    ),
    (
        "COSMIC-CRC-Signatures",
        "Somatic mutation signatures for colorectal cancers",
        "https://cancer.sanger.ac.uk/cosmic/signatures/colorectal",
    ),
    (
        "DepMap-CRC-Lines",
        "Dependency screens in colorectal cancer cell lines",
        "https://depmap.org/portal/context/colorectal",
    ),
    (
        "CRC-SC-Atlas",
        "Single cell atlas of colorectal tumor microenvironments",
        "https://www.colorectal-atlas.org/download",
    ),
];

/// Per-paper ground truth.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperTruth {
    pub id: String,
    /// Is the paper about colorectal cancer (the filter's target)?
    pub relevant: bool,
    /// Dataset mentions planted in the paper (empty unless relevant).
    pub mentions: Vec<DatasetMention>,
}

/// Ground truth for a science corpus, ordered like the document list.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScienceTruth {
    pub papers: Vec<PaperTruth>,
}

impl ScienceTruth {
    /// Expected filter decisions, in document order.
    pub fn relevant_flags(&self) -> Vec<bool> {
        self.papers.iter().map(|p| p.relevant).collect()
    }

    /// All dataset mentions expected from the full pipeline (relevant
    /// papers only — irrelevant papers are filtered before extraction).
    pub fn expected_mentions(&self) -> Vec<DatasetMention> {
        self.papers
            .iter()
            .filter(|p| p.relevant)
            .flat_map(|p| p.mentions.iter().cloned())
            .collect()
    }

    pub fn relevant_count(&self) -> usize {
        self.papers.iter().filter(|p| p.relevant).count()
    }
}

/// Corpus generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScienceConfig {
    pub n_papers: usize,
    /// Fraction of papers about colorectal cancer.
    pub relevant_fraction: f64,
    /// Probability a relevant paper carries a Data Availability section.
    pub with_data_fraction: f64,
    pub seed: u64,
}

impl Default for ScienceConfig {
    fn default() -> Self {
        Self {
            n_papers: 100,
            relevant_fraction: 0.4,
            with_data_fraction: 0.8,
            seed: 11,
        }
    }
}

fn render_paper(rng: &mut Prng, topic: &Topic, title: &str, mentions: &[DatasetMention]) -> String {
    let mut s = String::new();
    s.push_str(&format!("Title: {title}\n"));
    s.push_str(&format!(
        "Authors: {} et al.\n",
        ["Chen", "Okafor", "Martinez", "Novak", "Singh", "Dubois"][rng.below(6)]
    ));
    s.push_str(&format!("Abstract: {}\n\n", topic.paragraph(rng, 4)));
    // Full-length body (~4k tokens) so per-call token counts, costs and
    // latencies land in the same regime as the real 10-page PDFs the demo
    // processed.
    let sections: &[(&str, usize, usize)] = &[
        ("Introduction", 3, 8),
        ("Background", 2, 8),
        ("Methods", 3, 8),
        ("Results", 3, 8),
        ("Related Work", 2, 8),
        ("Discussion", 2, 8),
    ];
    for (heading, paragraphs, sentences) in sections {
        s.push_str(&format!("{heading}.\n"));
        for _ in 0..*paragraphs {
            s.push_str(&topic.paragraph(rng, *sentences));
            s.push('\n');
        }
        s.push('\n');
    }
    if !mentions.is_empty() {
        s.push_str("Data Availability. The following public datasets support this study.\n");
        for m in mentions {
            s.push_str(&format!("Dataset: {}\n", m.name));
            s.push_str(&format!("Description: {}\n", m.description));
            s.push_str(&format!("URL: {}\n", m.url));
        }
        s.push('\n');
    }
    s.push_str(&format!("Conclusion. {}\n", topic.paragraph(rng, 3)));
    s
}

fn mention_from_pool(idx: usize) -> DatasetMention {
    let (name, desc, url) = CRC_DATASETS[idx % CRC_DATASETS.len()];
    DatasetMention {
        name: name.into(),
        description: desc.into(),
        url: url.into(),
    }
}

/// Generate a corpus of `cfg.n_papers` papers.
pub fn generate(cfg: ScienceConfig) -> (Vec<Document>, ScienceTruth) {
    let mut rng = Prng::new(cfg.seed);
    let mut docs = Vec::with_capacity(cfg.n_papers);
    let mut truth = ScienceTruth::default();
    for i in 0..cfg.n_papers {
        let id = format!("paper-{i:04}");
        let relevant = rng.unit() < cfg.relevant_fraction;
        let (topic, title, mentions) = if relevant {
            let n_mentions = if rng.unit() < cfg.with_data_fraction {
                rng.range(1, 3)
            } else {
                0
            };
            let start = rng.below(CRC_DATASETS.len());
            let mentions: Vec<DatasetMention> = (0..n_mentions)
                .map(|k| mention_from_pool(start + k))
                .collect();
            let title = format!(
                "Colorectal cancer study {i}: {}",
                CRC_TOPIC.sentence(&mut rng).trim_end_matches('.')
            );
            (&CRC_TOPIC, title, mentions)
        } else if rng.unit() < 0.15 {
            // Hard negatives: oncology-adjacent but not colorectal.
            let title = format!(
                "Breast cancer study {i}: {}",
                BREAST_CANCER_TOPIC.sentence(&mut rng).trim_end_matches('.')
            );
            (&BREAST_CANCER_TOPIC, title, Vec::new())
        } else {
            let topic = &OFF_TOPICS[rng.below(OFF_TOPICS.len())];
            let title = format!(
                "{} study {i}: {}",
                topic.name,
                topic.sentence(&mut rng).trim_end_matches('.')
            );
            (topic, title, Vec::new())
        };
        let content = render_paper(&mut rng, topic, &title, &mentions);
        docs.push(Document::new(id.clone(), format!("{id}.pdf"), content));
        truth.papers.push(PaperTruth {
            id,
            relevant,
            mentions,
        });
    }
    (docs, truth)
}

/// The fixed 11-paper demo corpus of E1: 5 colorectal-cancer papers
/// carrying 6 dataset mentions in total (paper 0 carries two), plus 6
/// irrelevant papers including one breast-cancer hard negative.
pub fn demo_corpus() -> (Vec<Document>, ScienceTruth) {
    let mut rng = Prng::new(0xD3_A0);
    let mut docs = Vec::new();
    let mut truth = ScienceTruth::default();

    // Relevant papers with planted datasets: counts 2,1,1,1,1 -> 6 total.
    let mention_counts = [2usize, 1, 1, 1, 1];
    let mut pool_idx = 0usize;
    for (i, &count) in mention_counts.iter().enumerate() {
        let id = format!("paper-{i:03}");
        let mentions: Vec<DatasetMention> = (0..count)
            .map(|_| {
                let m = mention_from_pool(pool_idx);
                pool_idx += 1;
                m
            })
            .collect();
        let title = format!(
            "Colorectal cancer study {i}: {}",
            CRC_TOPIC.sentence(&mut rng).trim_end_matches('.')
        );
        let content = render_paper(&mut rng, &CRC_TOPIC, &title, &mentions);
        docs.push(Document::new(id.clone(), format!("{id}.pdf"), content));
        truth.papers.push(PaperTruth {
            id,
            relevant: true,
            mentions,
        });
    }

    // Irrelevant papers: 5 off-topic + 1 breast-cancer hard negative.
    for (j, topic) in OFF_TOPICS.iter().chain([&BREAST_CANCER_TOPIC]).enumerate() {
        let i = mention_counts.len() + j;
        let id = format!("paper-{i:03}");
        let title = format!(
            "{} study {i}: {}",
            topic.name,
            topic.sentence(&mut rng).trim_end_matches('.')
        );
        let content = render_paper(&mut rng, topic, &title, &[]);
        docs.push(Document::new(id.clone(), format!("{id}.pdf"), content));
        truth.papers.push(PaperTruth {
            id,
            relevant: false,
            mentions: Vec::new(),
        });
    }
    (docs, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_corpus_matches_paper_shape() {
        let (docs, truth) = demo_corpus();
        assert_eq!(docs.len(), 11, "the demo ran on 11 papers");
        assert_eq!(truth.relevant_count(), 5);
        assert_eq!(truth.expected_mentions().len(), 6, "6 extractable datasets");
    }

    #[test]
    fn demo_corpus_is_deterministic() {
        let (a, _) = demo_corpus();
        let (b, _) = demo_corpus();
        assert_eq!(a, b);
    }

    #[test]
    fn relevant_papers_mention_colorectal() {
        let (docs, truth) = demo_corpus();
        for (doc, t) in docs.iter().zip(&truth.papers) {
            let lower = doc.content.to_lowercase();
            if t.relevant {
                assert!(lower.contains("colorectal"), "{}", doc.id);
                assert!(lower.contains("cancer"), "{}", doc.id);
            } else {
                assert!(!lower.contains("colorectal"), "{}", doc.id);
            }
        }
    }

    #[test]
    fn hard_negative_contains_cancer_but_not_colorectal() {
        let (docs, truth) = demo_corpus();
        let hard: Vec<&Document> = docs
            .iter()
            .zip(&truth.papers)
            .filter(|(d, t)| !t.relevant && d.content.to_lowercase().contains("cancer"))
            .map(|(d, _)| d)
            .collect();
        assert!(
            !hard.is_empty(),
            "demo must include an oncology hard negative"
        );
    }

    #[test]
    fn mentions_are_rendered_in_content() {
        let (docs, truth) = demo_corpus();
        for (doc, t) in docs.iter().zip(&truth.papers) {
            for m in &t.mentions {
                assert!(
                    doc.content.contains(&m.name),
                    "{} missing {}",
                    doc.id,
                    m.name
                );
                assert!(doc.content.contains(&m.url));
            }
        }
    }

    #[test]
    fn generate_respects_size() {
        let (docs, truth) = generate(ScienceConfig {
            n_papers: 50,
            ..Default::default()
        });
        assert_eq!(docs.len(), 50);
        assert_eq!(truth.papers.len(), 50);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let cfg = ScienceConfig {
            n_papers: 20,
            ..Default::default()
        };
        assert_eq!(generate(cfg).0, generate(cfg).0);
        let other = ScienceConfig { seed: 99, ..cfg };
        assert_ne!(generate(cfg).0, generate(other).0);
    }

    #[test]
    fn generate_relevant_fraction_approximate() {
        let (_, truth) = generate(ScienceConfig {
            n_papers: 400,
            relevant_fraction: 0.4,
            ..Default::default()
        });
        let frac = truth.relevant_count() as f64 / 400.0;
        assert!((0.3..0.5).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn irrelevant_papers_have_no_mentions() {
        let (_, truth) = generate(ScienceConfig {
            n_papers: 100,
            ..Default::default()
        });
        for p in &truth.papers {
            if !p.relevant {
                assert!(p.mentions.is_empty());
            }
        }
    }

    #[test]
    fn unique_ids_and_filenames() {
        let (docs, _) = generate(ScienceConfig {
            n_papers: 30,
            ..Default::default()
        });
        let mut ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30);
    }
}
