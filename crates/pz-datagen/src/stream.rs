//! Streaming corpus generation: documents as a pure function of
//! `(seed, index)`.
//!
//! [`science::generate`](crate::science::generate) draws every paper from
//! one sequential PRNG stream, so producing paper *i* requires producing
//! papers `0..i` first and holding the whole corpus in memory. That is fine
//! at demo scale (11–400 papers) and hopeless at 1M. This module re-derives
//! the same template discipline with a *per-index* seed: document `i` under
//! `(workspace seed, i)` is rendered from `Prng::new(mix(seed, i))`, so any
//! document — and its ground truth — can be materialized in O(1) without
//! touching its neighbours. [`stream`] then yields the corpus lazily; the
//! iterator holds no documents at all, which is what lets the out-of-core
//! `Scan` keep at most O(chunk) records resident (DESIGN.md §5j).
//!
//! Bodies are deliberately shorter than [`science`](crate::science)'s ~4k
//! token papers ([`StreamConfig::body_paragraphs`]): at 1M records the
//! corpus is a memory/throughput stress test, not an LLM-token benchmark.
//! The shape invariants still hold — relevant papers say "colorectal",
//! irrelevant ones never do, dataset mentions use the same
//! `Dataset:/Description:/URL:` envelope the extraction pipeline parses.

use crate::science::{PaperTruth, BREAST_CANCER_TOPIC, CRC_DATASETS, CRC_TOPIC, OFF_TOPICS};
use crate::text::{Prng, Topic};
use crate::truth::DatasetMention;
use crate::Document;

/// Parameters for a streamed corpus. Copy, like `ScienceConfig`, so the
/// iterator can own it.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    pub n_docs: usize,
    /// Fraction of papers about colorectal cancer.
    pub relevant_fraction: f64,
    /// Probability a relevant paper carries a Data Availability section.
    pub with_data_fraction: f64,
    pub seed: u64,
    /// Body paragraphs per document. 2 keeps a 1M-record corpus in the
    /// hundreds-of-MB-streamed regime; raise it to approximate the full
    /// `science` papers.
    pub body_paragraphs: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            n_docs: 10_000,
            relevant_fraction: 0.4,
            with_data_fraction: 0.8,
            seed: 11,
            body_paragraphs: 2,
        }
    }
}

impl StreamConfig {
    pub fn sized(n_docs: usize, seed: u64) -> Self {
        Self {
            n_docs,
            seed,
            ..Self::default()
        }
    }
}

/// splitmix64-style finalizer over `(seed, index)`. Avalanches both inputs
/// so adjacent indices land in unrelated PRNG streams; uses the same
/// constants as [`Prng`] so the derivation stays in one idiom.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything decided about a document *before* rendering its body: topic,
/// title, mentions, relevance. Cheap enough to compute for truth-only
/// passes over millions of indices.
struct DocPlan {
    rng: Prng,
    topic: &'static Topic,
    title: String,
    relevant: bool,
    mentions: Vec<DatasetMention>,
}

fn plan_at(cfg: &StreamConfig, index: usize) -> DocPlan {
    let mut rng = Prng::new(mix(cfg.seed, index as u64));
    let relevant = rng.unit() < cfg.relevant_fraction;
    let (topic, title, mentions): (&'static Topic, String, Vec<DatasetMention>) = if relevant {
        let n_mentions = if rng.unit() < cfg.with_data_fraction {
            rng.range(1, 3)
        } else {
            0
        };
        let start = rng.below(CRC_DATASETS.len());
        let mentions: Vec<DatasetMention> = (0..n_mentions)
            .map(|k| {
                let (name, desc, url) = CRC_DATASETS[(start + k) % CRC_DATASETS.len()];
                DatasetMention {
                    name: name.into(),
                    description: desc.into(),
                    url: url.into(),
                }
            })
            .collect();
        let title = format!(
            "Colorectal cancer study {index}: {}",
            CRC_TOPIC.sentence(&mut rng).trim_end_matches('.')
        );
        (&CRC_TOPIC, title, mentions)
    } else if rng.unit() < 0.15 {
        let title = format!(
            "Breast cancer study {index}: {}",
            BREAST_CANCER_TOPIC.sentence(&mut rng).trim_end_matches('.')
        );
        (&BREAST_CANCER_TOPIC, title, Vec::new())
    } else {
        let topic = &OFF_TOPICS[rng.below(OFF_TOPICS.len())];
        let title = format!(
            "{} study {index}: {}",
            topic.name,
            topic.sentence(&mut rng).trim_end_matches('.')
        );
        (topic, title, Vec::new())
    };
    DocPlan {
        rng,
        topic,
        title,
        relevant,
        mentions,
    }
}

/// Stable id for document `index`: zero-padded wide enough for 1M+ corpora
/// to sort lexicographically in index order.
pub fn doc_id(index: usize) -> String {
    format!("doc-{index:07}")
}

/// Materialize document `index` in O(1): no other index is touched.
pub fn doc_at(cfg: &StreamConfig, index: usize) -> Document {
    let mut plan = plan_at(cfg, index);
    let id = doc_id(index);
    let mut s = String::new();
    s.push_str(&format!("Title: {}\n", plan.title));
    s.push_str(&format!(
        "Authors: {} et al.\n",
        ["Chen", "Okafor", "Martinez", "Novak", "Singh", "Dubois"][plan.rng.below(6)]
    ));
    s.push_str(&format!(
        "Abstract: {}\n\n",
        plan.topic.paragraph(&mut plan.rng, 3)
    ));
    for _ in 0..cfg.body_paragraphs {
        s.push_str(&plan.topic.paragraph(&mut plan.rng, 5));
        s.push('\n');
    }
    if !plan.mentions.is_empty() {
        s.push_str("\nData Availability. The following public datasets support this study.\n");
        for m in &plan.mentions {
            s.push_str(&format!("Dataset: {}\n", m.name));
            s.push_str(&format!("Description: {}\n", m.description));
            s.push_str(&format!("URL: {}\n", m.url));
        }
    }
    s.push_str(&format!(
        "\nConclusion. {}\n",
        plan.topic.paragraph(&mut plan.rng, 2)
    ));
    Document::new(id.clone(), format!("{id}.txt"), s)
}

/// Ground truth for document `index` without rendering its body.
pub fn truth_at(cfg: &StreamConfig, index: usize) -> PaperTruth {
    let plan = plan_at(cfg, index);
    PaperTruth {
        id: doc_id(index),
        relevant: plan.relevant,
        mentions: plan.mentions,
    }
}

/// Lazily yield the whole corpus in index order. Holds only the config;
/// each `next()` materializes exactly one document.
pub fn stream(cfg: StreamConfig) -> CorpusStream {
    CorpusStream { cfg, next: 0 }
}

/// Iterator over a streamed corpus. `ExactSizeIterator` so sources can
/// report cardinality without generating anything.
#[derive(Clone, Debug)]
pub struct CorpusStream {
    cfg: StreamConfig,
    next: usize,
}

impl CorpusStream {
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }
}

impl Iterator for CorpusStream {
    type Item = Document;

    fn next(&mut self) -> Option<Document> {
        if self.next >= self.cfg.n_docs {
            return None;
        }
        let doc = doc_at(&self.cfg, self.next);
        self.next += 1;
        Some(doc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.n_docs - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CorpusStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_at_is_pure_per_index() {
        let cfg = StreamConfig::sized(100, 42);
        for i in [0usize, 1, 37, 99] {
            assert_eq!(doc_at(&cfg, i), doc_at(&cfg, i), "index {i}");
        }
    }

    #[test]
    fn stream_matches_random_access() {
        let cfg = StreamConfig::sized(64, 7);
        let streamed: Vec<Document> = stream(cfg).collect();
        assert_eq!(streamed.len(), 64);
        for (i, doc) in streamed.iter().enumerate() {
            assert_eq!(doc, &doc_at(&cfg, i), "index {i}");
        }
    }

    #[test]
    fn seeds_and_indices_decorrelate() {
        let cfg = StreamConfig::sized(10, 1);
        let other = StreamConfig::sized(10, 2);
        assert_ne!(doc_at(&cfg, 0), doc_at(&other, 0));
        assert_ne!(doc_at(&cfg, 0).content, doc_at(&cfg, 1).content);
    }

    #[test]
    fn truth_agrees_with_content() {
        let cfg = StreamConfig::sized(200, 11);
        for i in 0..200 {
            let t = truth_at(&cfg, i);
            let d = doc_at(&cfg, i);
            assert_eq!(t.id, d.id);
            let lower = d.content.to_lowercase();
            if t.relevant {
                assert!(lower.contains("colorectal"), "{}", d.id);
            } else {
                assert!(!lower.contains("colorectal"), "{}", d.id);
                assert!(t.mentions.is_empty());
            }
            for m in &t.mentions {
                assert!(d.content.contains(&m.name), "{} missing {}", d.id, m.name);
                assert!(d.content.contains(&m.url));
            }
        }
    }

    #[test]
    fn relevant_fraction_approximate() {
        let cfg = StreamConfig::sized(2000, 5);
        let relevant = (0..2000).filter(|&i| truth_at(&cfg, i).relevant).count();
        let frac = relevant as f64 / 2000.0;
        assert!((0.3..0.5).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn exact_size_iterator_counts_down() {
        let mut it = stream(StreamConfig::sized(3, 9));
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn ids_sort_in_index_order() {
        assert!(doc_id(999_999) > doc_id(100_000));
        assert!(doc_id(10) > doc_id(9));
    }
}
