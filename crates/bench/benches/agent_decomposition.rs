//! E5 bench: chat-turn handling — planning a multi-step utterance and a
//! full ReAct turn through the tool suite.

use criterion::{criterion_group, criterion_main, Criterion};
use palimpchat::planner::plan_tasks;
use palimpchat::PalimpChat;
use std::hint::black_box;

const FIGURE4_UTTERANCE: &str =
    "I'm interested in papers that are about colorectal cancer, and for these papers, \
     extract whatever public dataset is used by the study";

fn bench_planning(c: &mut Criterion) {
    c.bench_function("plan_tasks_figure4", |b| {
        b.iter(|| black_box(plan_tasks(black_box(FIGURE4_UTTERANCE)).len()))
    });

    let mut group = c.benchmark_group("chat_turn");
    group.sample_size(20);
    group.bench_function("load_dataset_turn", |b| {
        b.iter(|| {
            let mut chat = PalimpChat::new();
            let resp = chat
                .handle(black_box("load the dataset of scientific papers"))
                .expect("turn");
            black_box(resp.trace.action_count())
        })
    });
    group.bench_function("figure4_turn", |b| {
        b.iter(|| {
            let mut chat = PalimpChat::new();
            chat.handle("load the dataset of scientific papers")
                .expect("turn");
            let resp = chat.handle(black_box(FIGURE4_UTTERANCE)).expect("turn");
            black_box(resp.trace.action_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
