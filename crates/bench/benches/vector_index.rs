//! E10 bench: vector index search — exact flat scan vs IVF at several
//! probe counts, and IVF build time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pz_vector::{FlatIndex, IvfConfig, IvfIndex, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn corpus(n: usize, dim: usize) -> Vec<(u64, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|i| {
            (
                i as u64,
                (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
            )
        })
        .collect()
}

fn bench_vector(c: &mut Criterion) {
    let dim = 64;
    let data = corpus(20_000, dim);
    let mut flat = FlatIndex::new(dim, Metric::Cosine);
    for (_, v) in &data {
        flat.add(v);
    }
    let ivf = IvfIndex::build(
        dim,
        Metric::Cosine,
        IvfConfig {
            nlist: 64,
            nprobe: 8,
            ..Default::default()
        },
        &data,
    );
    let query = data[7].1.clone();

    let mut group = c.benchmark_group("vector_search_20k");
    group.bench_function("flat", |b| {
        b.iter(|| black_box(flat.search(black_box(&query), 10).len()))
    });
    for nprobe in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("ivf", nprobe), &nprobe, |b, &np| {
            b.iter(|| black_box(ivf.search_with_nprobe(black_box(&query), 10, np).len()))
        });
    }
    group.finish();

    let small = corpus(5_000, dim);
    c.bench_function("ivf_build_5k", |b| {
        b.iter(|| {
            let idx = IvfIndex::build(
                dim,
                Metric::Cosine,
                IvfConfig {
                    nlist: 32,
                    nprobe: 4,
                    iterations: 5,
                    ..Default::default()
                },
                black_box(&small),
            );
            black_box(idx.nlist())
        })
    });
}

criterion_group!(benches, bench_vector);
criterion_main!(benches);
