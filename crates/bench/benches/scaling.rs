//! E8 bench: corpus-size and worker scaling of pipeline execution
//! (wall-clock; the virtual-clock scaling table is in `repro --exp e8`).

use bench::{demo_plan, science_context};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pz_core::prelude::*;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for n in [11usize, 50] {
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("papers{n}"), format!("w{workers}")),
                &(n, workers),
                |b, &(n, workers)| {
                    b.iter(|| {
                        let (ctx, _) = science_context(n, 17);
                        let outcome = execute(
                            &ctx,
                            &demo_plan(),
                            &Policy::MinCost,
                            ExecutionConfig::parallel(workers),
                        )
                        .expect("pipeline runs");
                        black_box(outcome.records.len())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Chunked out-of-core scan vs the whole-corpus legacy drive over a streamed
/// 10k-document corpus (E21 runs the full 10k/100k/1M curve; this keeps the
/// chunked path honest at bench cadence).
fn bench_chunked_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunked_scan");
    group.sample_size(10);
    const N: usize = 10_000;
    let make_ctx = || {
        let ctx = PzContext::simulated();
        let cfg = pz_datagen::stream::StreamConfig::sized(N, 11);
        ctx.registry
            .register(std::sync::Arc::new(GeneratedSource::new(
                "stream-corpus",
                Schema::text_file(),
                N,
                move |i| {
                    let d = pz_datagen::stream::doc_at(&cfg, i);
                    (d.filename, d.content)
                },
            )));
        ctx.udfs.register_filter("sparse", |r: &DataRecord| {
            r.get("filename")
                .map(|v| v.as_display().ends_with("0000.txt"))
                .unwrap_or(false)
        });
        ctx
    };
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "stream-corpus".into(),
            },
            PhysicalOp::UdfFilter {
                udf: "sparse".into(),
            },
        ],
    };
    for (label, chunk) in [("whole", 0usize), ("chunk4096", 4096)] {
        group.bench_with_input(BenchmarkId::new("scan10k", label), &chunk, |b, &chunk| {
            b.iter(|| {
                let ctx = make_ctx();
                let (records, _stats) = pz_core::exec::execute_plan(
                    &ctx,
                    &plan,
                    ExecutionConfig::sequential().with_scan_chunk_size(chunk),
                )
                .expect("scan runs");
                black_box(records.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_chunked_scan);
criterion_main!(benches);
