//! E8 bench: corpus-size and worker scaling of pipeline execution
//! (wall-clock; the virtual-clock scaling table is in `repro --exp e8`).

use bench::{demo_plan, science_context};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pz_core::prelude::*;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for n in [11usize, 50] {
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("papers{n}"), format!("w{workers}")),
                &(n, workers),
                |b, &(n, workers)| {
                    b.iter(|| {
                        let (ctx, _) = science_context(n, 17);
                        let outcome = execute(
                            &ctx,
                            &demo_plan(),
                            &Policy::MinCost,
                            ExecutionConfig::parallel(workers),
                        )
                        .expect("pipeline runs");
                        black_box(outcome.records.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
