//! E1/E2 wall-clock bench: the full scientific-discovery pipeline
//! (optimize + execute) on the 11-paper demo corpus.

use bench::{demo_context, demo_plan};
use criterion::{criterion_group, criterion_main, Criterion};
use pz_core::prelude::*;
use std::hint::black_box;

fn bench_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_scientific");
    group.sample_size(10);
    for (name, policy) in [
        ("max_quality", Policy::MaxQuality),
        ("min_cost", Policy::MinCost),
        ("min_time", Policy::MinTime),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (ctx, _) = demo_context();
                let outcome = execute(
                    &ctx,
                    &demo_plan(),
                    black_box(&policy),
                    ExecutionConfig::sequential(),
                )
                .expect("pipeline runs");
                black_box(outcome.records.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
