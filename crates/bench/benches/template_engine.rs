//! Substrate bench: the Archytas template engine on the Figure 2 tool body.

use archytas::template::{render_template, Bindings};
use criterion::{criterion_group, criterion_main, Criterion};
use palimpchat::codegen::CREATE_SCHEMA_TEMPLATE;
use serde_json::json;
use std::hint::black_box;

fn bench_template(c: &mut Criterion) {
    let mut vars = Bindings::new();
    vars.insert("schema_name".into(), json!("ClinicalData"));
    vars.insert(
        "schema_description".into(),
        json!("A schema for extracting clinical data datasets from papers."),
    );
    vars.insert("field_names".into(), json!(["name", "description", "url"]));

    c.bench_function("render_figure2_template", |b| {
        b.iter(|| {
            black_box(
                render_template(black_box(CREATE_SCHEMA_TEMPLATE), black_box(&vars))
                    .unwrap()
                    .len(),
            )
        })
    });

    let big_list: Vec<String> = (0..100).map(|i| format!("field_{i}")).collect();
    let mut big_vars = vars.clone();
    big_vars.insert("field_names".into(), json!(big_list));
    c.bench_function("render_100_field_loop", |b| {
        b.iter(|| {
            black_box(
                render_template(CREATE_SCHEMA_TEMPLATE, black_box(&big_vars))
                    .unwrap()
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench_template);
criterion_main!(benches);
