//! E4 bench: exhaustive enumeration vs Pareto-pruned enumeration as the
//! number of semantic operators grows.

use bench::chain_plan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pz_core::optimizer::cost::{estimate_plan, CostContext};
use pz_core::optimizer::{enumerate, pareto};
use pz_llm::Catalog;
use std::hint::black_box;

fn cost_ctx(catalog: &Catalog) -> CostContext {
    CostContext {
        catalog: catalog.clone(),
        input_cardinality: 100.0,
        avg_record_tokens: 3000.0,
        build_cardinality: Default::default(),
        calibration: None,
        workers: 1,
    }
}

fn bench_enumeration(c: &mut Criterion) {
    let catalog = Catalog::builtin();
    let ctx = cost_ctx(&catalog);
    let mut group = c.benchmark_group("plan_enumeration");

    for n in [1usize, 2, 3] {
        let plan = chain_plan(n);
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &plan, |b, plan| {
            b.iter(|| {
                let plans = enumerate::enumerate_plans(plan, &catalog, usize::MAX);
                let best = plans
                    .iter()
                    .map(|p| estimate_plan(p, &ctx))
                    .fold(f64::INFINITY, |acc, e| acc.min(e.cost_usd));
                black_box(best)
            })
        });
    }
    for n in [1usize, 3, 5] {
        let plan = chain_plan(n);
        group.bench_with_input(BenchmarkId::new("pareto_dp", n), &plan, |b, plan| {
            b.iter(|| black_box(pareto::enumerate_pareto(plan, &catalog, &ctx).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
