//! Resilience criterion: what do circuit breakers and mid-plan failover
//! cost?
//!
//! Two things are measured:
//!   * zero-fault overhead — a healthy run with the resilience layer armed
//!     (the default) vs one with failover disabled. The breaker bookkeeping
//!     and candidate lookups must be noise;
//!   * recovery time — wall clock of a run whose primary model is fully
//!     down, so every afflicted operator burns its retries, trips the
//!     breaker, and re-runs on the substitute model.
//!
//! The modelled virtual-clock recovery overhead is printed once outside the
//! measurement loop — that is the paper-facing number.

use bench::{demo_context, demo_plan};
use criterion::{criterion_group, criterion_main, Criterion};
use pz_core::prelude::*;
use pz_llm::FaultPlan;
use std::hint::black_box;

fn run_once(config: ExecutionConfig, plan: FaultPlan) -> (usize, f64, f64, usize) {
    let (ctx, _) = demo_context();
    ctx.faults.set(plan);
    let o = execute(&ctx, &demo_plan(), &Policy::MaxQuality, config).unwrap();
    (
        o.records.len(),
        o.stats.total_time_secs,
        ctx.ledger.total_cost_usd(),
        o.stats.degraded.len(),
    )
}

fn outage() -> FaultPlan {
    FaultPlan::none().outage("gpt-4o", 0.0, 1e9)
}

fn bench_resilience(c: &mut Criterion) {
    // Report the modelled numbers once, outside the measurement loop.
    let (n_h, t_h, cost_h, d_h) = run_once(ExecutionConfig::sequential(), FaultPlan::none());
    let (n_p, t_p, cost_p, _) = run_once(
        ExecutionConfig::sequential().without_failover(),
        FaultPlan::none(),
    );
    let (n_o, t_o, _, d_o) = run_once(ExecutionConfig::sequential(), outage());
    assert_eq!(n_h, n_p, "armed resilience must not change healthy output");
    assert_eq!(d_h, 0, "healthy run must not degrade");
    assert!(d_o > 0, "the outage run must record failover decisions");
    assert_eq!(n_h, n_o, "failover must preserve the output size");
    assert!(
        (cost_h - cost_p).abs() < 1e-9,
        "armed resilience must not change healthy cost: ${cost_h} vs ${cost_p}"
    );
    println!(
        "virtual-clock time: healthy {t_h:.1}s (failover off {t_p:.1}s), \
         full gpt-4o outage {t_o:.1}s with {d_o} failover(s), {n_h} records",
    );

    let mut group = c.benchmark_group("resilience");
    group.sample_size(10);
    group.bench_function("healthy_failover_armed", |b| {
        b.iter(|| black_box(run_once(ExecutionConfig::sequential(), FaultPlan::none())))
    });
    group.bench_function("healthy_failover_off", |b| {
        b.iter(|| {
            black_box(run_once(
                ExecutionConfig::sequential().without_failover(),
                FaultPlan::none(),
            ))
        })
    });
    group.bench_function("full_outage_recovery", |b| {
        b.iter(|| black_box(run_once(ExecutionConfig::sequential(), outage())))
    });
    group.bench_function("full_outage_recovery_streaming", |b| {
        b.iter(|| black_box(run_once(ExecutionConfig::streaming(), outage())))
    });
    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
