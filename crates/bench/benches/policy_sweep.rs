//! E3 bench: optimizer ranking time under each policy (enumeration +
//! estimation + Pareto + choice, no execution).

use bench::{demo_context, demo_plan};
use criterion::{criterion_group, criterion_main, Criterion};
use pz_core::optimizer::Optimizer;
use pz_core::prelude::*;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let (ctx, _) = demo_context();
    let plan = demo_plan();
    let optimizer = Optimizer::default();
    let mut group = c.benchmark_group("policy_sweep");
    for (name, policy) in [
        ("max_quality", Policy::MaxQuality),
        ("min_cost", Policy::MinCost),
        ("min_time", Policy::MinTime),
        ("quality_at_cost", Policy::MaxQualityAtCost(0.05)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (chosen, est, _) = optimizer
                    .optimize(black_box(&ctx), black_box(&plan), black_box(&policy))
                    .expect("optimize");
                black_box((chosen.ops.len(), est.cost_usd))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
