//! E9 bench: sentinel calibration cost as a function of sample size.

use bench::{demo_plan, science_context};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pz_core::optimizer::sentinel::calibrate;
use std::hint::black_box;

fn bench_sentinel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sentinel");
    group.sample_size(10);
    for sample in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sample),
            &sample,
            |b, &sample| {
                b.iter(|| {
                    let (ctx, _) = science_context(40, 29);
                    let calib = calibrate(&ctx, &demo_plan(), sample).expect("calibration");
                    black_box(calib.quality.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sentinel);
criterion_main!(benches);
