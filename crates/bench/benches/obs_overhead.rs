//! pz-obs recording overhead: raw span/event/counter costs, and the
//! end-to-end pipeline with tracing (always on in `PzContext`) vs the
//! trace being snapshotted/exported. The point: per-span cost is a mutex
//! lock + a couple of allocations — invisible next to a simulated (let
//! alone real) model call.

use bench::{demo_context, demo_plan};
use criterion::{criterion_group, criterion_main, Criterion};
use pz_core::prelude::*;
use pz_obs::{FrozenClock, Layer, Tracer};
use std::hint::black_box;
use std::sync::Arc;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    group.bench_function("leaf_span_with_attrs", |b| {
        let t = Tracer::new(Arc::new(FrozenClock(1)));
        b.iter(|| {
            let s = t.leaf_span(Layer::Llm, "complete");
            s.set_attr("model", "gpt-4o");
            s.set_attr("cost_usd", "0.000123");
            black_box(s.id().to_string())
        })
    });
    group.bench_function("structural_span_nesting", |b| {
        let t = Tracer::new(Arc::new(FrozenClock(1)));
        b.iter(|| {
            let outer = t.span(Layer::Executor, "op:filter");
            let inner = t.leaf_span(Layer::Llm, "complete");
            drop(inner);
            black_box(outer.id().is_root())
        })
    });
    group.bench_function("event", |b| {
        let t = Tracer::new(Arc::new(FrozenClock(1)));
        b.iter(|| t.event(Layer::Llm, "cache_hit", &[("model", "gpt-4o".to_string())]))
    });
    group.bench_function("counter_incr", |b| {
        let t = Tracer::new(Arc::new(FrozenClock(1)));
        b.iter(|| t.incr("vector.probes", 1))
    });
    group.bench_function("histogram_observe", |b| {
        let t = Tracer::new(Arc::new(FrozenClock(1)));
        b.iter(|| t.observe("llm.latency_secs", 0.25))
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_pipeline");
    group.sample_size(10);
    group.bench_function("traced_execution", |b| {
        b.iter(|| {
            let (ctx, _) = demo_context();
            let o = execute(
                &ctx,
                &demo_plan(),
                &Policy::MinCost,
                ExecutionConfig::sequential(),
            )
            .unwrap();
            black_box((o.records.len(), ctx.tracer.span_count()))
        })
    });
    group.bench_function("snapshot_and_export_jsonl", |b| {
        let (ctx, _) = demo_context();
        execute(
            &ctx,
            &demo_plan(),
            &Policy::MinCost,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        b.iter(|| black_box(ctx.tracer.snapshot().to_jsonl().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_pipeline);
criterion_main!(benches);
