//! Substrate bench: simulated-LLM call throughput for the three prompt
//! kinds pipelines issue (filter, extract, embed). Wall-clock only — the
//! virtual-latency accounting is free by design.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pz_llm::protocol::{extract_prompt, filter_prompt, Cardinality, FieldSpec};
use pz_llm::{CompletionRequest, EmbeddingRequest, LlmClient, SimulatedLlm};
use std::hint::black_box;

const DOC: &str = "Title: Gene mutation profiles in colorectal cancer tumors\n\
    Abstract: We study somatic mutation patterns in colorectal cancer tumor \
    cells using public genomic cohorts across multiple hospitals and cohorts.\n\
    Dataset: TCGA-COADREAD\n\
    Description: Colorectal adenocarcinoma multi omics cohort\n\
    URL: https://portal.gdc.cancer.gov/projects/TCGA-COADREAD\n";

fn bench_llm(c: &mut Criterion) {
    let sim = SimulatedLlm::with_defaults();
    let mut group = c.benchmark_group("sim_llm");
    group.throughput(Throughput::Elements(1));

    let filter_req = CompletionRequest::new(
        "gpt-4o",
        filter_prompt("The papers are about colorectal cancer", DOC),
    );
    group.bench_function("filter_call", |b| {
        b.iter(|| black_box(sim.complete(black_box(&filter_req)).unwrap().text.len()))
    });

    let fields = vec![
        FieldSpec::new("name", "The dataset name"),
        FieldSpec::new("description", "A short description"),
        FieldSpec::new("url", "The public URL"),
    ];
    let extract_req = CompletionRequest::new(
        "gpt-4o",
        extract_prompt(&fields, Cardinality::OneToMany, DOC),
    );
    group.bench_function("extract_call", |b| {
        b.iter(|| black_box(sim.complete(black_box(&extract_req)).unwrap().text.len()))
    });

    let embed_req = EmbeddingRequest {
        model: "text-embedding-3-small".into(),
        inputs: vec![DOC.to_string()],
    };
    group.bench_function("embed_call", |b| {
        b.iter(|| black_box(sim.embed(black_box(&embed_req)).unwrap().vectors.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_llm);
criterion_main!(benches);
