//! Streaming pipelined executor vs operator-at-a-time materializing
//! executor on the multi-stage demo plan.
//!
//! Two things are measured:
//!   * wall-clock throughput of each executor (criterion) — the streaming
//!     machinery (channels + stage threads + per-stage meters) must not
//!     cost more than the work it overlaps;
//!   * modelled *virtual-clock* time, printed once per mode — this is the
//!     paper-facing number: pipelining turns the sum of per-operator
//!     latencies into the bottleneck stage plus fill delay.

use bench::{demo_context, demo_plan};
use criterion::{criterion_group, criterion_main, Criterion};
use pz_core::prelude::*;
use std::hint::black_box;

fn run_once(config: ExecutionConfig) -> (usize, f64, f64) {
    let (ctx, _) = demo_context();
    let o = execute(&ctx, &demo_plan(), &Policy::MaxQuality, config).unwrap();
    (
        o.records.len(),
        o.stats.total_time_secs,
        ctx.ledger.total_cost_usd(),
    )
}

fn bench_modes(c: &mut Criterion) {
    // Report the modelled speedup once, outside the measurement loop.
    let (n_m, t_m, cost_m) = run_once(ExecutionConfig::sequential());
    let (n_s, t_s, cost_s) = run_once(ExecutionConfig::streaming());
    assert_eq!(n_m, n_s, "modes must agree on output size");
    assert!(
        (cost_m - cost_s).abs() < 1e-9,
        "modes must agree on cost: ${cost_m} vs ${cost_s}"
    );
    assert!(
        t_s < t_m,
        "streaming must be faster on the virtual clock: {t_s}s vs {t_m}s"
    );
    println!(
        "virtual-clock time: materializing {t_m:.1}s, streaming {t_s:.1}s \
         ({:.2}x speedup), identical cost ${cost_m:.3}, {n_m} records",
        t_m / t_s
    );

    let mut group = c.benchmark_group("streaming_vs_materializing");
    group.sample_size(10);
    group.bench_function("materializing", |b| {
        b.iter(|| black_box(run_once(ExecutionConfig::sequential())))
    });
    group.bench_function("streaming", |b| {
        b.iter(|| black_box(run_once(ExecutionConfig::streaming())))
    });
    group.bench_function("streaming_small_batches", |b| {
        b.iter(|| black_box(run_once(ExecutionConfig::streaming_with(1, 1))))
    });
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
