//! E11/E12 wall-clock ablations: cache on/off re-runs and the filter
//! physical strategies.

use bench::{demo_context, demo_plan, science_context, DEMO_DATASET};
use criterion::{criterion_group, criterion_main, Criterion};
use pz_core::prelude::*;
use pz_llm::protocol::Effort;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_ablation");
    group.sample_size(10);
    group.bench_function("rerun_no_cache", |b| {
        b.iter(|| {
            let (ctx, _) = demo_context();
            let plan = demo_plan();
            execute(&ctx, &plan, &Policy::MinCost, ExecutionConfig::sequential()).unwrap();
            let o = execute(&ctx, &plan, &Policy::MinCost, ExecutionConfig::sequential()).unwrap();
            black_box(o.records.len())
        })
    });
    group.bench_function("rerun_with_cache", |b| {
        b.iter(|| {
            let (ctx, _) = demo_context();
            let ctx = ctx.with_cache();
            let plan = demo_plan();
            execute(&ctx, &plan, &Policy::MinCost, ExecutionConfig::sequential()).unwrap();
            let o = execute(&ctx, &plan, &Policy::MinCost, ExecutionConfig::sequential()).unwrap();
            black_box(o.records.len())
        })
    });
    group.finish();
}

fn bench_filter_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_strategy");
    group.sample_size(10);
    let strategies: Vec<(&str, PhysicalOp)> = vec![
        (
            "llm_standard",
            PhysicalOp::LlmFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
        ),
        (
            "ensemble",
            PhysicalOp::EnsembleFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                models: vec!["gpt-4o".into(), "llama-3-70b".into(), "gpt-4o-mini".into()],
                effort: Effort::Standard,
            },
        ),
        (
            "embedding",
            PhysicalOp::EmbeddingFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "text-embedding-3-small".into(),
                threshold: 0.30,
            },
        ),
    ];
    for (name, op) in strategies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (ctx, _) = science_context(30, 41);
                let plan = PhysicalPlan {
                    ops: vec![
                        PhysicalOp::Scan {
                            dataset: DEMO_DATASET.into(),
                        },
                        op.clone(),
                    ],
                };
                let (records, _) =
                    pz_core::exec::execute_plan(&ctx, &plan, ExecutionConfig::sequential())
                        .unwrap();
                black_box(records.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache, bench_filter_strategies);
criterion_main!(benches);
