//! Shared harness for the experiments (see EXPERIMENTS.md).
//!
//! The `repro` binary and every criterion bench build on these helpers so
//! all experiments run the exact same pipelines over the exact same
//! corpora.

use pz_core::prelude::*;
use pz_datagen::science::{self, ScienceConfig, ScienceTruth};
use pz_datagen::truth::{score_dataset_extractions, PrF1};
use std::sync::Arc;

/// The demo dataset registry name (Figure 6's `source="sigmod-demo"`).
pub const DEMO_DATASET: &str = "sigmod-demo";

/// A context with the fixed 11-paper demo corpus registered.
pub fn demo_context() -> (PzContext, ScienceTruth) {
    let (docs, truth) = science::demo_corpus();
    (register_docs(docs), truth)
}

/// A context with a parameterized science corpus registered.
pub fn science_context(n_papers: usize, seed: u64) -> (PzContext, ScienceTruth) {
    let (docs, truth) = science::generate(ScienceConfig {
        n_papers,
        seed,
        ..Default::default()
    });
    (register_docs(docs), truth)
}

/// A context over a fully custom science corpus configuration.
pub fn science_context_with(cfg: ScienceConfig) -> (PzContext, ScienceTruth) {
    let (docs, truth) = science::generate(cfg);
    (register_docs(docs), truth)
}

fn register_docs(docs: Vec<pz_datagen::Document>) -> PzContext {
    let ctx = PzContext::simulated();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        DEMO_DATASET,
        Schema::pdf_file(),
        items,
    )));
    ctx
}

/// The ClinicalData schema from Figure 6.
pub fn clinical_schema() -> Schema {
    Schema::new(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        vec![
            FieldDef::text("name", "The name of the clinical data dataset"),
            FieldDef::text(
                "description",
                "A short description of the content of the dataset",
            ),
            FieldDef::text("url", "The public URL where the dataset can be accessed"),
        ],
    )
    .expect("static schema is valid")
}

/// The scientific-discovery logical plan (scan → filter → convert).
pub fn demo_plan() -> LogicalPlan {
    Dataset::source(DEMO_DATASET)
        .filter(science::FILTER_PREDICATE)
        .convert(
            clinical_schema(),
            Cardinality::OneToMany,
            "extract clinical datasets",
        )
        .build()
        .expect("static plan is valid")
}

/// A logical plan with `n` chained semantic filters (plan-space scaling).
pub fn chain_plan(n_filters: usize) -> LogicalPlan {
    let mut d = Dataset::source(DEMO_DATASET);
    for i in 0..n_filters {
        d = d.filter(format!("predicate number {i} about colorectal cancer"));
    }
    d.build().expect("static plan is valid")
}

/// Score the extraction output of the demo pipeline against ground truth
/// (name + URL must both match — the paper verified URLs by hand).
pub fn score_extractions(records: &[DataRecord], truth: &ScienceTruth) -> PrF1 {
    let predicted: Vec<(Option<String>, Option<String>)> = records
        .iter()
        .map(|r| {
            (
                r.get("name").and_then(|v| v.as_text()).map(String::from),
                r.get("url").and_then(|v| v.as_text()).map(String::from),
            )
        })
        .collect();
    score_dataset_extractions(&predicted, &truth.expected_mentions())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_harness_round_trip() {
        let (ctx, truth) = demo_context();
        let outcome = execute(
            &ctx,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        let score = score_extractions(&outcome.records, &truth);
        assert!(score.f1 > 0.7, "MaxQuality F1 {}", score.f1);
        assert_eq!(truth.expected_mentions().len(), 6);
    }

    #[test]
    fn chain_plan_shapes() {
        assert_eq!(chain_plan(3).ops.len(), 4);
        assert_eq!(chain_plan(3).semantic_op_count(), 3);
    }

    #[test]
    fn science_context_scales() {
        let (ctx, truth) = science_context(30, 7);
        assert!(ctx.registry.contains(DEMO_DATASET));
        assert_eq!(truth.papers.len(), 30);
    }
}
