//! Regenerate every experiment in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p bench --bin repro --release            # all experiments
//! cargo run -p bench --bin repro --release -- e1 e3   # a subset
//! cargo run -p bench --bin repro --release -- e1 --trace-out trace.jsonl
//! ```
//!
//! Experiment ids follow DESIGN.md §4 (E1–E10). Output is plain text so it
//! can be diffed against EXPERIMENTS.md. `--trace-out <path>` additionally
//! runs the §3 chat dialogue and exports its full pz-obs trace as JSONL.
//! `--exec-mode streaming|materializing` selects the executor used by every
//! experiment (default: materializing). `--fault-plan <spec>` scripts
//! provider faults (e.g. `gpt-4o:outage@0..120`) into the E1 headline run
//! and the trace export, so CI can archive a degraded-run trace.
//! `--adaptive` arms runtime adaptive re-optimization in every experiment's
//! executor (E18 scripts its own adaptive-vs-static brownout comparison
//! regardless of the flag).
//! `--incremental` arms delta-driven re-execution: the E1 context and the
//! trace-export chat session carry a memo snapshot, and every experiment's
//! executor replays memoized operator verdicts instead of re-billing them
//! (E19 scripts its own incremental-vs-from-scratch comparison regardless
//! of the flag).
//! `--profile` runs the E16 demo plan with the pipeline profiler armed and
//! prints the per-stage attribution table, critical path, and the
//! estimate-vs-observed drift report (this is experiment E17);
//! `--chrome-trace-out <path>`, `--prom-out <path>` and `--drift-out
//! <path>` additionally export that profiled run as a Chrome trace-event
//! file, Prometheus text exposition, and drift-report text.

use bench::{
    chain_plan, clinical_schema, demo_context, demo_plan, science_context, science_context_with,
    score_extractions, DEMO_DATASET,
};
use palimpchat::PalimpChat;
use pz_core::optimizer::cost::CostContext;
use pz_core::optimizer::{enumerate, pareto, sentinel, Optimizer};
use pz_core::prelude::*;
use pz_vector::{FlatIndex, IvfConfig, IvfIndex, Metric};
use std::time::Instant;

/// Execution mode applied to every experiment (`--exec-mode`).
static EXEC_MODE: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();

/// Scripted provider faults (`--fault-plan <spec>`), injected into the E1
/// headline run and the trace export so CI can archive a degraded-run
/// trace. E15 scripts its own outage regardless of this flag.
static FAULT_PLAN: std::sync::OnceLock<pz_llm::FaultPlan> = std::sync::OnceLock::new();

/// Streaming per-stage worker-pool size (`--parallelism N`, default 1).
/// Only affects streaming runs; materializing ignores it.
static PARALLELISM: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

/// Runtime adaptive re-optimization (`--adaptive`): every experiment's
/// executor re-costs the remaining plan suffix mid-run and swaps degraded
/// models. E18 scripts its own adaptive-vs-static comparison regardless.
static ADAPTIVE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

/// Incremental execution (`--incremental`): arm a memo snapshot on the E1
/// context and the trace-export chat session, and raise the config flag in
/// every experiment's executor. E19 scripts its own incremental-vs-scratch
/// comparison regardless.
static INCREMENTAL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

fn exec_mode() -> ExecMode {
    EXEC_MODE.get().copied().unwrap_or(ExecMode::Materializing)
}

fn parallelism() -> usize {
    PARALLELISM.get().copied().unwrap_or(1).max(1)
}

fn adaptive_cfg() -> AdaptiveConfig {
    if ADAPTIVE.get().copied().unwrap_or(false) {
        AdaptiveConfig::on()
    } else {
        AdaptiveConfig::default()
    }
}

fn scripted_faults(ctx: &PzContext) {
    if let Some(plan) = FAULT_PLAN.get() {
        ctx.faults.set(plan.clone());
    }
}

fn incremental() -> bool {
    INCREMENTAL.get().copied().unwrap_or(false)
}

/// Destination for the E21 scaling-curve JSON (`--scaling-out <path>`);
/// the scaling-gate CI job archives it as an artifact.
static SCALING_OUT: std::sync::OnceLock<String> = std::sync::OnceLock::new();

/// Arm a fresh memo snapshot on `ctx` when `--incremental` is set; the
/// config flag from `cfg_seq`/`cfg_par` activates it.
fn scripted_incremental(ctx: &mut PzContext) {
    if incremental() {
        ctx.incremental = Some(pz_core::exec::ExecutionSnapshot::new());
    }
}

fn cfg_seq() -> ExecutionConfig {
    let cfg = ExecutionConfig::sequential()
        .with_mode(exec_mode())
        .with_parallelism_config(ParallelismConfig::fixed(parallelism()))
        .with_adaptive(adaptive_cfg());
    if incremental() {
        cfg.with_incremental()
    } else {
        cfg
    }
}

fn cfg_par(workers: usize) -> ExecutionConfig {
    let cfg = ExecutionConfig::parallel(workers)
        .with_mode(exec_mode())
        .with_parallelism_config(ParallelismConfig::fixed(parallelism()))
        .with_adaptive(adaptive_cfg());
    if incremental() {
        cfg.with_incremental()
    } else {
        cfg
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden cell runner for the E21 scaling curve: each (kind, n) cell
    // runs in its own subprocess so `VmHWM` is a clean per-cell peak-RSS
    // reading, and prints one JSON object on stdout for the parent.
    if args.first().map(String::as_str) == Some("scaling-cell") {
        let kind = args.get(1).cloned().unwrap_or_default();
        let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
        scaling_cell(&kind, n);
        return;
    }
    let take_path = |args: &mut Vec<String>, flag: &str| -> Option<String> {
        match args.iter().position(|a| a == flag) {
            Some(i) => {
                if i + 1 >= args.len() {
                    eprintln!("{flag} requires a path argument");
                    std::process::exit(2);
                }
                let path = args.remove(i + 1);
                args.remove(i);
                Some(path)
            }
            None => None,
        }
    };
    let trace_out = take_path(&mut args, "--trace-out");
    if let Some(path) = take_path(&mut args, "--scaling-out") {
        let _ = SCALING_OUT.set(path);
    }
    let chrome_out = take_path(&mut args, "--chrome-trace-out");
    let prom_out = take_path(&mut args, "--prom-out");
    let drift_out = take_path(&mut args, "--drift-out");
    let profile_flag = match args.iter().position(|a| a == "--profile") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let profile_requested =
        profile_flag || chrome_out.is_some() || prom_out.is_some() || drift_out.is_some();
    if let Some(i) = args.iter().position(|a| a == "--exec-mode") {
        if i + 1 >= args.len() {
            eprintln!("--exec-mode requires streaming | materializing");
            std::process::exit(2);
        }
        let mode = args.remove(i + 1);
        args.remove(i);
        let mode = match mode.as_str() {
            "streaming" => ExecMode::streaming(),
            "materializing" => ExecMode::Materializing,
            other => {
                eprintln!("unknown --exec-mode {other:?} (try streaming | materializing)");
                std::process::exit(2);
            }
        };
        let _ = EXEC_MODE.set(mode);
        println!("exec mode: {mode:?}");
    }
    if let Some(i) = args.iter().position(|a| a == "--parallelism") {
        if i + 1 >= args.len() {
            eprintln!("--parallelism requires a worker count (or 0 for one per core)");
            std::process::exit(2);
        }
        let n = args.remove(i + 1);
        args.remove(i);
        match n.parse::<usize>() {
            Ok(0) => {
                let cores = pz_core::exec::available_cores();
                let _ = PARALLELISM.set(cores);
                println!("parallelism: {cores} workers/stage (one per core)");
            }
            Ok(w) => {
                let _ = PARALLELISM.set(w);
                println!("parallelism: {w} workers/stage");
            }
            Err(_) => {
                eprintln!("bad --parallelism value {n:?} (want an integer)");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--adaptive") {
        args.remove(i);
        let _ = ADAPTIVE.set(true);
        println!("adaptive replanning: on (suffix re-costing + champion/challenger swaps)");
    }
    if let Some(i) = args.iter().position(|a| a == "--incremental") {
        args.remove(i);
        let _ = INCREMENTAL.set(true);
        println!("incremental execution: on (memoized operator verdicts replay for free)");
    }
    if let Some(i) = args.iter().position(|a| a == "--fault-plan") {
        if i + 1 >= args.len() {
            eprintln!("--fault-plan requires a spec, e.g. gpt-4o:outage@0..120");
            std::process::exit(2);
        }
        let spec = args.remove(i + 1);
        args.remove(i);
        match pz_llm::FaultPlan::parse(&spec, 42) {
            Ok(plan) => {
                println!("fault plan: {}", plan.describe());
                let _ = FAULT_PLAN.set(plan);
            }
            Err(e) => {
                eprintln!("bad --fault-plan spec: {e}");
                std::process::exit(2);
            }
        }
    }
    // `repro bench-json [--out PATH]`: machine-readable perf-gate numbers.
    if args.iter().any(|a| a == "bench-json") {
        let out = match args.iter().position(|a| a == "--out") {
            Some(i) => {
                if i + 1 >= args.len() {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                }
                args[i + 1].clone()
            }
            None => "BENCH_5.json".to_string(),
        };
        bench_json(&out);
        return;
    }
    // A bare `--profile` (or export flag) runs only the profiled E17 pass;
    // experiment ids can still be combined with it explicitly.
    let run = |id: &str| {
        (args.is_empty() && !profile_requested) || args.iter().any(|a| a.eq_ignore_ascii_case(id))
    };
    if run("e1") {
        e1_headline();
    }
    if run("e2") {
        e2_stats_breakdown();
    }
    if run("e3") {
        e3_policy_sweep();
    }
    if run("e4") {
        e4_plan_space();
    }
    if run("e5") {
        e5_agent_decomposition();
    }
    if run("e6") {
        e6_three_scenarios();
    }
    if run("e7") {
        e7_generated_code();
    }
    if run("e8") {
        e8_scaling();
    }
    if run("e9") {
        e9_sentinel();
    }
    if run("e10") {
        e10_vector_index();
    }
    if run("e11") {
        e11_cache_ablation();
    }
    if run("e12") {
        e12_filter_strategy_ablation();
    }
    if run("e13") {
        e13_convert_strategy_ablation();
    }
    if run("e15") {
        e15_resilience();
    }
    if run("e16") {
        e16_parallelism();
    }
    if run("e17") || profile_requested {
        e17_profiling(
            chrome_out.as_deref(),
            prom_out.as_deref(),
            drift_out.as_deref(),
        );
    }
    if run("e18") {
        e18_adaptive();
    }
    if run("e19") {
        e19_incremental();
    }
    if run("e20") {
        e20_serving();
    }
    if run("e21") {
        e21_scaling();
    }
    if let Some(path) = trace_out {
        export_trace(&path);
    }
}

/// Run the §3 demo dialogue and export its unified pz-obs trace as JSONL
/// (one span/event/counter/histogram per line — the CI smoke artifact).
fn export_trace(path: &str) {
    banner("TRACE", "unified observability trace of the §3 dialogue");
    let mut chat = PalimpChat::new();
    {
        let mut session = chat.session().lock();
        session.ctx.exec_mode = exec_mode();
        session.ctx.adaptive = adaptive_cfg();
        scripted_incremental(&mut session.ctx);
    }
    scripted_faults(&chat.session().lock().ctx);
    for turn in [
        "Please load the dataset of scientific papers from my folder",
        "I'm interested in papers that are about colorectal cancer, and for these papers, \
         extract whatever public dataset is used by the study",
        "run the pipeline with maximum quality",
    ] {
        chat.handle(turn).expect("chat turn");
    }
    let snap = chat.tracer().snapshot();
    std::fs::write(path, snap.to_jsonl()).expect("write trace");
    println!(
        "{} spans, {} events, {} counters -> {path}",
        snap.spans.len(),
        snap.events.len(),
        snap.counters.len()
    );
    print!("{}", pz_obs::render_tree(&snap));
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// E1 — §3 headline numbers: 11 papers → 6 datasets, ≈240 s, ≈$0.35.
fn e1_headline() {
    banner("E1", "scientific discovery headline (paper §3)");
    let (mut ctx, truth) = demo_context();
    scripted_faults(&ctx);
    scripted_incremental(&mut ctx);
    let outcome =
        execute(&ctx, &demo_plan(), &Policy::MaxQuality, cfg_seq()).expect("demo pipeline runs");
    let filter_out = outcome.operators_out(1);
    let score = score_extractions(&outcome.records, &truth);
    println!("{:<38} {:>12} {:>12}", "metric", "paper", "measured");
    println!("{:<38} {:>12} {:>12}", "input papers", 11, 11);
    println!(
        "{:<38} {:>12} {:>12}",
        "papers passing the filter", "-", filter_out
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "datasets extracted",
        6,
        outcome.records.len()
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "verified (name+URL match truth)", "6 (manual)", score.true_positives
    );
    println!(
        "{:<38} {:>12} {:>12.1}",
        "pipeline runtime (s, virtual)", "~240", outcome.stats.total_time_secs
    );
    println!(
        "{:<38} {:>12} {:>12.3}",
        "pipeline cost (USD)", "~0.35", outcome.stats.total_cost_usd
    );
    println!("chosen plan: {}", outcome.chosen_plan.describe());
    println!(
        "extraction P/R/F1 vs ground truth: {:.2}/{:.2}/{:.2}",
        score.precision, score.recall, score.f1
    );
}

trait OperatorsOut {
    fn operators_out(&self, idx: usize) -> usize;
}

impl OperatorsOut for ExecutionOutcome {
    fn operators_out(&self, idx: usize) -> usize {
        self.stats
            .operators
            .get(idx)
            .map_or(0, |o| o.output_records)
    }
}

/// E2 — Figure 5: per-operator execution statistics.
fn e2_stats_breakdown() {
    banner("E2", "per-operator execution statistics (Figure 5)");
    let (ctx, _) = demo_context();
    let outcome =
        execute(&ctx, &demo_plan(), &Policy::MaxQuality, cfg_seq()).expect("demo pipeline runs");
    print!("{}", outcome.stats.render_table());
    println!("\nsample output records:");
    for r in outcome.records.iter().take(3) {
        println!(
            "  {}",
            serde_json::to_string(&r.to_json()).unwrap_or_default()
        );
    }
}

/// E3 — §2.1 policies: quality / cost / runtime tradeoff.
fn e3_policy_sweep() {
    banner("E3", "optimization-policy sweep (paper §2.1)");
    println!(
        "{:<28} {:>9} {:>9} {:>7} {:>7} | chosen plan",
        "policy", "cost($)", "time(s)", "out", "F1"
    );
    let policies = [
        Policy::MaxQuality,
        Policy::MinCost,
        Policy::MinTime,
        Policy::MaxQualityAtCost(0.05),
        Policy::MaxQualityAtTime(60.0),
        Policy::MinCostAtQuality(0.85),
    ];
    for policy in policies {
        let (ctx, truth) = demo_context();
        let outcome = execute(&ctx, &demo_plan(), &policy, cfg_seq()).expect("demo pipeline runs");
        let score = score_extractions(&outcome.records, &truth);
        println!(
            "{:<28} {:>9.4} {:>9.1} {:>7} {:>7.2} | {}",
            policy.name(),
            outcome.stats.total_cost_usd,
            outcome.stats.total_time_secs,
            outcome.records.len(),
            score.f1,
            shorten(&outcome.chosen_plan.describe(), 60),
        );
    }
    println!("\nexpected shape: MaxQuality best F1; MinCost cheapest; MinTime fastest;");
    println!("constrained policies stay within budget while maximizing their objective.");
}

fn shorten(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}

/// E4 — plan-space growth and Pareto pruning.
fn e4_plan_space() {
    banner("E4", "physical plan space vs Pareto frontier (paper §2.1)");
    println!(
        "{:<14} {:>14} {:>10} {:>14} {:>14}",
        "semantic ops", "plan space", "frontier", "enum time", "pruned time"
    );
    for n in 1..=6 {
        let plan = chain_plan(n);
        let catalog = pz_llm::Catalog::builtin();
        let space = enumerate::plan_space_size(&plan, &catalog);
        let cost_ctx = CostContext {
            catalog: catalog.clone(),
            input_cardinality: 100.0,
            avg_record_tokens: 3000.0,
            build_cardinality: Default::default(),
            calibration: None,
            workers: 1,
        };
        let t0 = Instant::now();
        let frontier = pareto::enumerate_pareto(&plan, &catalog, &cost_ctx);
        let pruned_time = t0.elapsed();
        let enum_time = if space <= 50_000 {
            let t1 = Instant::now();
            let plans = enumerate::enumerate_plans(&plan, &catalog, 50_000);
            let _ests: Vec<_> = plans
                .iter()
                .map(|p| pz_core::optimizer::cost::estimate_plan(p, &cost_ctx))
                .collect();
            format!("{:>11.1?}", t1.elapsed())
        } else {
            format!("{:>11}", "(skipped)")
        };
        println!(
            "{:<14} {:>14} {:>10} {:>14} {:>11.1?}",
            n,
            space,
            frontier.len(),
            enum_time,
            pruned_time
        );
    }
    println!("\nexpected shape: space grows 14x per semantic op (6 models x 2 efforts + embedding + ensemble); the frontier stays small.");
}

/// E5 — Figure 4: agent decomposition of chat turns.
fn e5_agent_decomposition() {
    banner("E5", "chat-turn decomposition (Figure 4)");
    let mut chat = PalimpChat::new();
    let turns = [
        "Please load the dataset of scientific papers from my folder",
        "I'm interested in papers that are about colorectal cancer, and for these papers, \
         extract whatever public dataset is used by the study",
        "run the pipeline with maximum quality",
        "how much did the run cost and how long did it take?",
        "download the notebook with the generated code",
    ];
    println!("{:<6} {:>7}  tools invoked", "turn", "steps");
    for (i, turn) in turns.iter().enumerate() {
        let resp = chat.handle(turn).expect("chat turn");
        println!(
            "{:<6} {:>7}  {}",
            i + 1,
            resp.trace.action_count(),
            resp.trace.tools_used().join(" -> ")
        );
    }
    println!("\nfull trace of turn 2 (the multi-step decomposition):");
    let mut chat2 = PalimpChat::new();
    chat2.handle(turns[0]).unwrap();
    let resp = chat2.handle(turns[1]).unwrap();
    print!("{}", resp.trace.render());
}

/// E6 — the three demo scenarios end to end through chat.
fn e6_three_scenarios() {
    banner(
        "E6",
        "three demo scenarios (scientific, legal, real estate)",
    );
    let scenarios: [(&str, &[&str]); 3] = [
        (
            "scientific discovery",
            &[
                "load the dataset of scientific papers",
                "I'm interested in papers that are about colorectal cancer, and for these \
                 papers, extract whatever public dataset is used by the study",
                "run the pipeline with maximum quality",
            ],
        ),
        (
            "legal discovery",
            &[
                "load the legal discovery emails",
                "categorize the emails into acme initech merger deal and office social staff",
                "run the pipeline with minimum cost",
            ],
        ),
        (
            "real estate search",
            &[
                "load the real estate listings",
                "keep only the listings that describe modern homes with a garden",
                "run the pipeline as quick as possible",
            ],
        ),
    ];
    for (name, turns) in scenarios {
        let mut chat = PalimpChat::new();
        let mut last = String::new();
        for t in turns {
            last = chat.handle(t).expect("turn").reply;
        }
        println!("\n--- {name} ---");
        println!("{last}");
    }
}

/// E7 — Figure 6: the generated pipeline code.
fn e7_generated_code() {
    banner("E7", "generated pipeline code (Figure 6)");
    let mut chat = PalimpChat::new();
    chat.handle("load the dataset of scientific papers")
        .unwrap();
    chat.handle(
        "I'm interested in papers that are about colorectal cancer, and for these papers, \
         extract whatever public dataset is used by the study",
    )
    .unwrap();
    chat.handle("run the pipeline with maximum quality")
        .unwrap();
    let resp = chat.handle("export the notebook").unwrap();
    println!("{}", resp.reply);
}

/// E8 — corpus-size and worker scaling.
fn e8_scaling() {
    banner("E8", "corpus-size and parallelism scaling");
    println!(
        "{:<9} {:>9} {:>11} {:>11} {:>9} {:>10}",
        "papers", "workers", "time(s)", "cost($)", "out", "rec/s"
    );
    for &n in &[11usize, 50, 200] {
        for &workers in &[1usize, 4, 8] {
            let (ctx, _) = science_context(n, 17);
            let outcome = execute(&ctx, &demo_plan(), &Policy::MinCost, cfg_par(workers))
                .expect("pipeline runs");
            println!(
                "{:<9} {:>9} {:>11.1} {:>11.4} {:>9} {:>10.2}",
                n,
                workers,
                outcome.stats.total_time_secs,
                outcome.stats.total_cost_usd,
                outcome.records.len(),
                n as f64 / outcome.stats.total_time_secs.max(1e-9),
            );
        }
    }
    println!("\nexpected shape: cost linear in corpus size and independent of workers;");
    println!("runtime divided by ~workers for the LLM-bound operators.");
}

/// E9 — sentinel calibration: estimate error before/after.
fn e9_sentinel() {
    banner("E9", "sentinel calibration of optimizer estimates");
    // A corpus where the cost-model defaults are badly wrong: only ~12% of
    // the papers are relevant, so the default filter selectivity of 0.5
    // grossly over-estimates the work downstream of the filter.
    let (ctx, _) = science_context_with(pz_datagen::science::ScienceConfig {
        n_papers: 60,
        relevant_fraction: 0.12,
        seed: 29,
        ..Default::default()
    });
    let plan = demo_plan();
    // Uncalibrated estimate.
    let default_ctx = CostContext::from_context(&ctx, &plan).expect("costing");
    // Calibrated estimate (sentinel runs charge cost — measure it).
    let sentinel_cost_before = ctx.ledger.total_cost_usd();
    let calib = sentinel::calibrate(&ctx, &plan, 10).expect("calibration");
    let sentinel_cost = ctx.ledger.total_cost_usd() - sentinel_cost_before;
    let mut calibrated_ctx = default_ctx.clone();
    calibrated_ctx.calibration = Some(calib);

    // The plan MaxQuality picks; estimate with and without calibration.
    let optimizer = Optimizer::default();
    let (chosen, default_est, _) = optimizer
        .optimize(&ctx, &plan, &Policy::MaxQuality)
        .expect("optimize");
    let calibrated_est = pz_core::optimizer::cost::estimate_plan(&chosen, &calibrated_ctx);

    // Ground truth: actually run it.
    ctx.reset_accounting();
    let (_, stats) = pz_core::exec::execute_plan(&ctx, &chosen, cfg_seq()).expect("execution");

    let err = |est: f64, act: f64| (est - act).abs() / act.max(1e-9) * 100.0;
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "quantity", "default", "calibrated", "actual"
    );
    println!(
        "{:<26} {:>12.4} {:>12.4} {:>12.4}",
        "cost (USD)", default_est.cost_usd, calibrated_est.cost_usd, stats.total_cost_usd
    );
    println!(
        "{:<26} {:>12.1} {:>12.1} {:>12.1}",
        "runtime (s)", default_est.time_secs, calibrated_est.time_secs, stats.total_time_secs
    );
    println!(
        "{:<26} {:>11.1}% {:>11.1}%",
        "cost estimate error",
        err(default_est.cost_usd, stats.total_cost_usd),
        err(calibrated_est.cost_usd, stats.total_cost_usd)
    );
    println!(
        "{:<26} {:>11.1}% {:>11.1}%",
        "runtime estimate error",
        err(default_est.time_secs, stats.total_time_secs),
        err(calibrated_est.time_secs, stats.total_time_secs)
    );
    println!("sentinel overhead: ${sentinel_cost:.4}");
    println!("\nexpected shape: calibrated errors are smaller than default errors.");
}

/// E11 — response-cache ablation: what re-runs and sentinel+execution cost
/// with and without the exact-match cache.
fn e11_cache_ablation() {
    banner("E11", "response-cache ablation");
    println!(
        "{:<44} {:>12} {:>12}",
        "configuration", "run1 ($)", "run2 ($)"
    );
    for cached in [false, true] {
        let (mut_ctx, _) = demo_context();
        let ctx = if cached {
            mut_ctx.with_cache()
        } else {
            mut_ctx
        };
        let plan = demo_plan();
        execute(&ctx, &plan, &Policy::MaxQuality, cfg_seq()).expect("first run");
        let run1 = ctx.ledger.total_cost_usd();
        execute(&ctx, &plan, &Policy::MaxQuality, cfg_seq()).expect("second run");
        let run2 = ctx.ledger.total_cost_usd() - run1;
        println!(
            "{:<44} {:>12.4} {:>12.4}",
            if cached {
                "with exact-match cache"
            } else {
                "no cache"
            },
            run1,
            run2
        );
        if let Some(cache) = &ctx.cache {
            let stats = cache.stats();
            println!(
                "    cache: {} hits / {} misses ({:.0}% hit rate on re-run)",
                stats.completion_hits,
                stats.completion_misses,
                stats.completion_hit_rate() * 100.0
            );
        }
    }
    println!("\nexpected shape: the cached re-run is free; the uncached one pays full price.");
}

/// E12 — filter-strategy ablation: one logical filter, every physical
/// strategy, measured against ground truth on a 60-paper corpus.
fn e12_filter_strategy_ablation() {
    banner("E12", "filter physical-strategy ablation (60 papers)");
    use pz_llm::protocol::Effort;
    let strategies: Vec<(&str, PhysicalOp)> = vec![
        (
            "llama-3-8b (weak, std)",
            PhysicalOp::LlmFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "llama-3-8b".into(),
                effort: Effort::Standard,
            },
        ),
        (
            "gpt-4o (champion, std)",
            PhysicalOp::LlmFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
        ),
        (
            "gpt-4o (champion, high)",
            PhysicalOp::LlmFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::High,
            },
        ),
        (
            "ensemble top-3 (vote)",
            PhysicalOp::EnsembleFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                models: vec!["gpt-4o".into(), "llama-3-70b".into(), "gpt-4o-mini".into()],
                effort: Effort::Standard,
            },
        ),
        (
            "embedding similarity",
            PhysicalOp::EmbeddingFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "text-embedding-3-small".into(),
                threshold: 0.30,
            },
        ),
    ];
    println!(
        "{:<26} {:>9} {:>9} {:>6} {:>6} {:>6}",
        "strategy", "cost($)", "time(s)", "prec", "rec", "F1"
    );
    for (name, op) in strategies {
        let (ctx, truth) = science_context(60, 41);
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: DEMO_DATASET.into(),
                },
                op,
            ],
        };
        let (records, stats) = pz_core::exec::execute_plan(&ctx, &plan, cfg_seq()).expect("runs");
        // Score kept-vs-truth per paper id.
        let kept: std::collections::BTreeSet<String> = records
            .iter()
            .filter_map(|r| r.get("filename").map(|v| v.as_display()))
            .collect();
        let mut tp = 0usize;
        let mut expected = 0usize;
        for (i, p) in truth.papers.iter().enumerate() {
            let fname = format!("paper-{i:04}.pdf");
            if p.relevant {
                expected += 1;
                if kept.contains(&fname) {
                    tp += 1;
                }
            }
        }
        let m = pz_datagen::truth::PrF1::from_counts(tp, kept.len(), expected);
        println!(
            "{:<26} {:>9.4} {:>9.1} {:>6.2} {:>6.2} {:>6.2}",
            name, stats.total_cost_usd, stats.total_time_secs, m.precision, m.recall, m.f1
        );
    }
    println!("\nexpected shape: the weak model clearly trails; high effort doubles the");
    println!("champion's cost for a small error-rate reduction (often invisible on a");
    println!("60-paper draw); the ensemble pays ~2.4x the champion for a comparable");
    println!("error rate (errors correlate across models). The embedding heuristic is");
    println!("~100x cheaper and performs well here because this corpus is lexically");
    println!("separable — exactly what sentinel calibration (E9) discovers, letting the");
    println!("optimizer route such filters to the cheap strategy with confidence.");
}

/// E13 — convert-strategy ablation: "bonded" (all fields in one prompt)
/// vs "conventional" field-wise extraction, the design choice the
/// Palimpzest paper's optimizer weighs.
fn e13_convert_strategy_ablation() {
    banner("E13", "convert strategy ablation: bonded vs field-wise");
    use pz_llm::protocol::Effort;
    println!(
        "{:<34} {:>9} {:>9} {:>6} {:>6} {:>6}",
        "strategy", "cost($)", "time(s)", "prec", "rec", "F1"
    );
    for (name, fieldwise) in [
        ("bonded (one prompt, all fields)", false),
        ("field-wise (one prompt per field)", true),
    ] {
        let (ctx, truth) = demo_context();
        let convert = if fieldwise {
            PhysicalOp::FieldwiseConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract datasets".into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            }
        } else {
            PhysicalOp::LlmConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract datasets".into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            }
        };
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: DEMO_DATASET.into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
                convert,
            ],
        };
        let (records, stats) = pz_core::exec::execute_plan(&ctx, &plan, cfg_seq()).expect("runs");
        let m = score_extractions(&records, &truth);
        println!(
            "{:<34} {:>9.4} {:>9.1} {:>6.2} {:>6.2} {:>6.2}",
            name, stats.total_cost_usd, stats.total_time_secs, m.precision, m.recall, m.f1
        );
    }
    println!("\nexpected shape: bonded extracts all fields for one input-token payment;");
    println!("field-wise pays the document once per field (~3x here) and loses alignment");
    println!("on one-to-many outputs — the finding that makes bonded Palimpzest's default.");
}

/// E10 — vector substrate: flat vs IVF recall/latency.
fn e10_vector_index() {
    banner("E10", "vector index microbenchmark (flat vs IVF)");
    let dim = 64;
    let n = 20_000usize;
    // Deterministic synthetic corpus with mild cluster structure.
    let embedder = pz_llm::Embedder::new(dim);
    let corpus: Vec<(u64, Vec<f32>)> = (0..n)
        .map(|i| {
            let topic = [
                "cancer genomics",
                "galaxy survey",
                "real estate",
                "merger law",
            ][i % 4];
            (
                i as u64,
                embedder.embed(&format!("{topic} document number {i} with words {}", i * 7)),
            )
        })
        .collect();
    let mut flat = FlatIndex::new(dim, Metric::Cosine);
    for (_, v) in &corpus {
        flat.add(v);
    }
    let ivf = IvfIndex::build(
        dim,
        Metric::Cosine,
        IvfConfig {
            nlist: 64,
            nprobe: 8,
            ..Default::default()
        },
        &corpus,
    );
    let queries: Vec<Vec<f32>> = (0..50)
        .map(|i| embedder.embed(&format!("cancer genomics query {i}")))
        .collect();

    let t0 = Instant::now();
    let truths: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| flat.search(q, 10).iter().map(|h| h.id).collect())
        .collect();
    let flat_time = t0.elapsed();

    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "index", "q/s", "us/query", "recall@10"
    );
    println!(
        "{:<10} {:>12.0} {:>12.1} {:>10.3}",
        "flat",
        queries.len() as f64 / flat_time.as_secs_f64(),
        flat_time.as_micros() as f64 / queries.len() as f64,
        1.0
    );
    for nprobe in [1usize, 4, 8, 16, 64] {
        let t1 = Instant::now();
        let mut hit = 0usize;
        let mut total = 0usize;
        for (q, truth) in queries.iter().zip(&truths) {
            let got: Vec<u64> = ivf
                .search_with_nprobe(q, 10, nprobe)
                .iter()
                .map(|h| h.id)
                .collect();
            hit += truth.iter().filter(|t| got.contains(t)).count();
            total += truth.len();
        }
        let t = t1.elapsed();
        println!(
            "{:<10} {:>12.0} {:>12.1} {:>10.3}",
            format!("ivf@{nprobe}"),
            queries.len() as f64 / t.as_secs_f64(),
            t.as_micros() as f64 / queries.len() as f64,
            hit as f64 / total as f64
        );
    }
    println!("\nexpected shape: IVF throughput falls and recall rises with nprobe;");
    println!("nprobe = nlist matches flat exactly.");
    let _ = DEMO_DATASET;
    let _ = clinical_schema();
}

/// E15 — resilience: a scripted full outage of the headline model must be
/// absorbed by circuit breakers + mid-plan failover in both executors,
/// and an empty fault plan must cost nothing over a failover-less run.
fn e15_resilience() {
    banner(
        "E15",
        "provider outage -> circuit breaker -> mid-plan failover",
    );
    println!(
        "{:<16} {:<14} {:>8} {:>9} {:>9} {:>9} {:>6} {:>6}",
        "scenario", "mode", "records", "cost($)", "time(s)", "f1", "swaps", "trips"
    );
    let mut last_degraded = Vec::new();
    for (mode_name, config) in [
        ("materializing", ExecutionConfig::sequential()),
        ("streaming", ExecutionConfig::streaming()),
    ] {
        for (scenario, plan) in [
            ("healthy", pz_llm::FaultPlan::none()),
            (
                "gpt-4o outage",
                pz_llm::FaultPlan::none().outage("gpt-4o", 0.0, 1e9),
            ),
        ] {
            let (ctx, truth) = demo_context();
            ctx.faults.set(plan);
            let outcome = execute(&ctx, &demo_plan(), &Policy::MaxQuality, config)
                .expect("pipeline survives the outage via failover");
            let score = score_extractions(&outcome.records, &truth);
            println!(
                "{:<16} {:<14} {:>8} {:>9.3} {:>9.1} {:>9.2} {:>6} {:>6}",
                scenario,
                mode_name,
                outcome.records.len(),
                outcome.stats.total_cost_usd,
                outcome.stats.total_time_secs,
                score.f1,
                outcome.stats.degraded.len(),
                ctx.tracer.counter("llm.breaker_opened"),
            );
            if scenario != "healthy" && !outcome.stats.degraded.is_empty() {
                last_degraded = outcome.stats.degraded.clone();
            }
        }
    }
    println!("\nfailover decisions (last outage run):");
    for d in &last_degraded {
        println!(
            "  op[{}] {}: {} -> {} ({}, {} record(s), est. quality {:+.2})",
            d.operator_index,
            d.operator,
            d.from_model,
            d.to_model,
            d.reason,
            d.records_affected,
            d.est_quality_delta
        );
    }
    println!("\nexpected shape: outage runs finish with the same record multiset on the");
    println!("substitute model at slightly lower quality; healthy runs show zero swaps,");
    println!("zero trips, and identical cost with failover enabled or disabled.");
}

/// Field-content multiset key for cross-mode output comparison (record ids
/// are allocator-dependent, so they are excluded via `to_json`).
fn record_multiset(records: &[pz_core::record::DataRecord]) -> Vec<String> {
    let mut keys: Vec<String> = records
        .iter()
        .map(|r| serde_json::to_string(&r.to_json()).expect("record serializes"))
        .collect();
    keys.sort();
    keys
}

/// Streaming config for the parallelism experiments: batch size 1 so every
/// record is its own unit of overlap (`effective_workers = min(pool,
/// records)` instead of `min(pool, ceil(records / 4))`).
fn streaming_cfg(parallelism: usize) -> ExecutionConfig {
    ExecutionConfig::sequential()
        .with_mode(ExecMode::Streaming {
            channel_capacity: 2,
            batch_size: 1,
        })
        .with_parallelism_config(ParallelismConfig::fixed(parallelism))
}

/// E16 — intra-operator worker pools: parallelism sweep over the §3 demo
/// plan (Scan → LLMFilter → LLMConvert) under the streaming executor.
/// Output multiset and ledger cost must be bit-identical at every level —
/// pools change *when* calls overlap on the virtual clock, never what is
/// called — and attributed time must drop at least 2x by parallelism 8.
fn e16_parallelism() {
    banner("E16", "streaming worker pools: parallelism sweep");
    println!(
        "{:<12} {:>8} {:>9} {:>9} {:>9} {:>7}",
        "parallelism", "records", "cost($)", "time(s)", "speedup", "calls"
    );
    let mut baseline: Option<(Vec<String>, f64, f64)> = None;
    for p in [1usize, 2, 4, 8] {
        let (ctx, _truth) = demo_context();
        let outcome = execute(&ctx, &demo_plan(), &Policy::MaxQuality, streaming_cfg(p))
            .expect("parallelism sweep runs");
        let keys = record_multiset(&outcome.records);
        let cost = ctx.ledger.total_cost_usd();
        let time = outcome.stats.total_time_secs;
        let speedup = match &baseline {
            None => {
                baseline = Some((keys.clone(), cost, time));
                1.0
            }
            Some((base_keys, base_cost, base_time)) => {
                assert_eq!(
                    &keys, base_keys,
                    "parallelism {p} changed the output multiset"
                );
                assert!(
                    (cost - base_cost).abs() < 1e-9,
                    "parallelism {p} changed ledger cost: {base_cost} -> {cost}"
                );
                base_time / time
            }
        };
        println!(
            "{:<12} {:>8} {:>9.3} {:>9.1} {:>8.2}x {:>7}",
            p,
            outcome.records.len(),
            cost,
            time,
            speedup,
            outcome.stats.total_llm_calls
        );
        if p == 8 {
            assert!(
                speedup >= 2.0,
                "parallelism 8 must give >= 2x virtual-clock speedup, got {speedup:.2}x"
            );
        }
    }
    println!("\nexpected shape: identical records and dollars at every level; time");
    println!("divides by min(workers, records-per-stage) clamped by each model's");
    println!("published rate limit (gpt-4o caps at 8 concurrent requests).");
}

/// E17 — pipeline profiler on the E16 demo plan: per-stage attribution
/// (compute / queue-wait / provider-wait / backpressure / retry), critical
/// path, bottleneck agreement with the `finalize_pipelined` fill model,
/// and estimate-vs-observed drift against the optimizer's predictions.
/// Optional paths export the profiled trace as a Chrome trace-event file,
/// Prometheus text exposition, and drift-report text (the CI artifacts).
fn e17_profiling(chrome_out: Option<&str>, prom_out: Option<&str>, drift_out: Option<&str>) {
    banner(
        "E17",
        "pipeline profiler: attribution, critical path, drift",
    );
    let (ctx, _truth) = demo_context();
    ctx.tracer.set_profiling(true);
    scripted_faults(&ctx);
    let outcome =
        execute(&ctx, &demo_plan(), &Policy::MaxQuality, streaming_cfg(8)).expect("profiled run");
    let snap = ctx.tracer.snapshot();
    let profile = pz_obs::profile_plan(&snap).expect("plan profile from the trace");
    print!("{}", profile.render());

    // Attribution buckets must account for each stage's whole window.
    for s in &profile.stages {
        let sum = s.buckets.total_us();
        let tolerance = (s.window_us as f64 * 0.01).max(1.0);
        assert!(
            (sum as f64 - s.window_us as f64).abs() <= tolerance,
            "stage {} buckets sum to {}us but its window is {}us",
            s.index,
            sum,
            s.window_us
        );
    }
    println!("attribution: every stage's buckets sum to its window (<= 1% tolerance)");

    // The trace-derived bottleneck must be the same stage the executor's
    // fill model picks.
    let startups: Vec<f64> = profile.stages.iter().map(|s| s.startup_secs).collect();
    let stats_bottleneck = outcome.stats.pipelined_bottleneck(&startups);
    assert_eq!(
        profile.bottleneck(),
        stats_bottleneck,
        "profiler bottleneck disagrees with finalize_pipelined"
    );
    println!(
        "bottleneck agreement: profiler and finalize_pipelined both pick stage {}",
        stats_bottleneck.map_or("-".to_string(), |i| i.to_string())
    );

    // Drift: the optimizer's per-stage predictions vs what actually ran.
    let drift = outcome
        .drift_report()
        .expect("drift report for the chosen plan");
    let llm_stages: Vec<&StageDrift> = drift.stages.iter().filter(|s| s.is_llm()).collect();
    assert!(
        !llm_stages.is_empty(),
        "the demo plan has LLM stages; drift must cover them"
    );
    for s in &llm_stages {
        assert!(
            s.obs_llm_calls > 0.0,
            "LLM stage {} recorded no observed calls",
            s.index
        );
    }
    print!("{}", drift.render_table());
    println!(
        "drift coverage: {} of {} stages touched a model; all have drift rows",
        llm_stages.len(),
        drift.stages.len()
    );

    if let Some(path) = chrome_out {
        std::fs::write(path, pz_obs::to_chrome_trace(&snap)).expect("write chrome trace");
        println!("chrome trace -> {path}");
    }
    if let Some(path) = prom_out {
        std::fs::write(path, pz_obs::to_prometheus(&snap)).expect("write prometheus text");
        println!("prometheus text -> {path}");
    }
    if let Some(path) = drift_out {
        std::fs::write(path, drift.render_table()).expect("write drift report");
        println!("drift report -> {path}");
    }
    println!("\nexpected shape: the LLM convert stage dominates its window with provider");
    println!("wait; upstream stages show backpressure against it; the critical path runs");
    println!("through the bottleneck stage; observed time/cost sit near the estimates");
    println!("(the simulator is the cost model's own ground truth).");
}

/// One brownout run for E18: the demo plan with the filter pinned on
/// gpt-4o (browning out: 25 s stalls on ~35% of calls — under the
/// breaker's trip rate, so static execution just keeps paying) and the
/// convert on healthy llama-3-70b. Returns (virtual time, ledger cost,
/// output multiset, replan reports).
fn e18_brownout_run(adaptive: bool) -> (f64, f64, Vec<String>, Vec<AdaptiveReport>) {
    use pz_llm::protocol::Effort;
    let (ctx, _truth) = demo_context();
    ctx.faults.set(
        pz_llm::FaultPlan::parse("gpt-4o:timeout@0..1e9:p=0.35:stall=25", 11).expect("fault spec"),
    );
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: DEMO_DATASET.into(),
            },
            PhysicalOp::LlmFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
            PhysicalOp::LlmConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract datasets".into(),
                model: "llama-3-70b".into(),
                effort: Effort::Standard,
            },
        ],
    };
    let config = if adaptive {
        ExecutionConfig::streaming().with_adaptive(AdaptiveConfig::on())
    } else {
        ExecutionConfig::streaming()
    };
    let (records, stats) = pz_core::exec::execute_plan(&ctx, &plan, config).expect("brownout run");
    (
        ctx.clock.now_secs(),
        ctx.ledger.total_cost_usd(),
        record_multiset(&records),
        stats.adaptive,
    )
}

/// E18 — runtime adaptive re-optimization under a brownout: the static
/// plan keeps paying 25-second stalls on the degraded champion; the
/// adaptive executor detects the drift, re-costs the remaining suffix and
/// sticky-swaps the filter onto a healthy model mid-stream. Same output
/// multiset, near-healthy runtime.
fn e18_adaptive() {
    banner("E18", "adaptive replanning under a model brownout");
    let (healthy_time, healthy_cost, _, _) = {
        use pz_llm::protocol::Effort;
        let (ctx, _truth) = demo_context();
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan {
                    dataset: DEMO_DATASET.into(),
                },
                PhysicalOp::LlmFilter {
                    predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                    model: "gpt-4o".into(),
                    effort: Effort::Standard,
                },
                PhysicalOp::LlmConvert {
                    target: clinical_schema(),
                    cardinality: Cardinality::OneToMany,
                    description: "extract datasets".into(),
                    model: "llama-3-70b".into(),
                    effort: Effort::Standard,
                },
            ],
        };
        let (records, _) =
            pz_core::exec::execute_plan(&ctx, &plan, ExecutionConfig::streaming()).expect("runs");
        (
            ctx.clock.now_secs(),
            ctx.ledger.total_cost_usd(),
            record_multiset(&records),
            Vec::<AdaptiveReport>::new(),
        )
    };
    let (static_time, static_cost, static_keys, _) = e18_brownout_run(false);
    let (adaptive_time, adaptive_cost, adaptive_keys, reports) = e18_brownout_run(true);
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>8}",
        "configuration", "time(s)", "cost($)", "records", "replans"
    );
    for (name, time, cost, n, replans) in [
        (
            "healthy baseline",
            healthy_time,
            healthy_cost,
            static_keys.len(),
            0,
        ),
        (
            "brownout, static",
            static_time,
            static_cost,
            static_keys.len(),
            0,
        ),
        (
            "brownout, adaptive",
            adaptive_time,
            adaptive_cost,
            adaptive_keys.len(),
            reports.len(),
        ),
    ] {
        println!(
            "{:<22} {:>9.1} {:>9.3} {:>8} {:>8}",
            name, time, cost, n, replans
        );
    }
    assert_eq!(
        static_keys, adaptive_keys,
        "adaptive run changed the output multiset"
    );
    assert!(
        adaptive_time < static_time,
        "adaptive ({adaptive_time:.1}s) not faster than static ({static_time:.1}s)"
    );
    println!("\nreplan decisions:");
    for r in &reports {
        println!(
            "  op[{}] {}: {} -> {} ({}: {:.2} >= {:.2}, {} record(s) remaining, t={:.1}s)",
            r.operator_index,
            r.operator,
            r.from_model,
            r.to_model,
            r.trigger,
            r.observed_ratio,
            r.threshold,
            r.records_remaining,
            r.at_secs
        );
    }
    println!(
        "\nspeedup vs static brownout: {:.2}x; overhead vs healthy: {:.2}x",
        static_time / adaptive_time,
        adaptive_time / healthy_time
    );
    println!("expected shape: identical output multiset; the static run pays every stall");
    println!("while the breaker never trips (35% < its 75% trip rate); the adaptive run");
    println!("swaps the browning-out filter after a few records and lands near the");
    println!("healthy frontier at equal output.");
}

/// Shared E19 measurement, used by the experiment printout and the
/// bench-json gate. A 40-paper corpus runs cold through the demo-shaped
/// plan with the memo armed, one document is appended, and the re-run is
/// compared against a from-scratch run over the 41-paper corpus.
struct E19Numbers {
    cold_time: f64,
    cold_calls: usize,
    rerun_time: f64,
    rerun_calls: usize,
    scratch_time: f64,
    scratch_calls: usize,
    memo_hits: usize,
    keys_match: bool,
    prefix_free: bool,
}

fn e19_measure() -> E19Numbers {
    use pz_llm::protocol::Effort;
    let (docs, _) = pz_datagen::science::generate(pz_datagen::science::ScienceConfig {
        n_papers: 40,
        ..Default::default()
    });
    let mut items: Vec<(String, String)> =
        docs.into_iter().map(|d| (d.filename, d.content)).collect();
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "sci-inc".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: pz_datagen::science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
            PhysicalOp::LlmConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract datasets".into(),
                model: "llama-3-70b".into(),
                effort: Effort::Standard,
            },
        ],
    };
    let config = cfg_seq().with_incremental();

    let ctx = PzContext::simulated().with_incremental();
    scripted_faults(&ctx);
    let src = std::sync::Arc::new(VersionedSource::new(
        "sci-inc",
        Schema::pdf_file(),
        items.clone(),
    ));
    ctx.registry.register(src.clone());
    let (_, _) = pz_core::exec::execute_plan(&ctx, &plan, config).expect("cold run");
    let cold_time = ctx.clock.now_secs();
    let cold_calls = ctx.ledger.total_requests();

    // One appended paper, from the shared seeded edit-script generator.
    for op in &pz_datagen::edits::append_script(7, 1, 1).batches[0] {
        if let pz_datagen::edits::EditOp::Append(d) = op {
            src.append(&d.filename, &d.content);
            items.push((d.filename.clone(), d.content.clone()));
        }
    }
    ctx.reset_accounting();
    let (rec_i, stats_i) = pz_core::exec::execute_plan(&ctx, &plan, config).expect("append re-run");
    let rerun_time = ctx.clock.now_secs();
    let rerun_calls = ctx.ledger.total_requests();

    let scratch = PzContext::simulated();
    scripted_faults(&scratch);
    scratch
        .registry
        .register(std::sync::Arc::new(MemorySource::new(
            "sci-inc",
            Schema::pdf_file(),
            items,
        )));
    let (rec_f, _) =
        pz_core::exec::execute_plan(&scratch, &plan, cfg_seq()).expect("from-scratch run");
    E19Numbers {
        cold_time,
        cold_calls,
        rerun_time,
        rerun_calls,
        scratch_time: scratch.clock.now_secs(),
        scratch_calls: scratch.ledger.total_requests(),
        memo_hits: stats_i.memo_hits,
        keys_match: record_multiset(&rec_i) == record_multiset(&rec_f),
        prefix_free: cold_calls + rerun_calls == scratch.ledger.total_requests(),
    }
}

/// E19 — incremental append latency: after one document lands in a
/// 40-paper corpus, the delta-driven re-run bills O(1) LLM calls (the new
/// record through filter + convert) and finishes orders of magnitude
/// faster than re-running the pipeline from scratch.
fn e19_incremental() {
    banner(
        "E19",
        "incremental append latency: delta re-run vs from-scratch",
    );
    let n = e19_measure();
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "configuration", "time(s)", "llm calls", "replays"
    );
    for (name, time, calls, hits) in [
        ("cold run (40 papers)", n.cold_time, n.cold_calls, 0usize),
        (
            "append re-run (+1 paper)",
            n.rerun_time,
            n.rerun_calls,
            n.memo_hits,
        ),
        (
            "from-scratch (41 papers)",
            n.scratch_time,
            n.scratch_calls,
            0,
        ),
    ] {
        println!("{name:<28} {time:>10.1} {calls:>10} {hits:>10}");
    }
    // The strict invariants (identical output multiset, exact prefix
    // arithmetic: cold + delta == scratch calls) only hold fault-free.
    // Scripted faults re-draw per request: retries bill a different number
    // of attempts in each run, and an exhausted retry budget fails the call
    // over to a backup model whose answer may differ — so the incremental
    // re-run and the independently-faulted scratch run legitimately
    // diverge. (Fixed-seed fault equivalence is pinned down by the
    // integration suite's brownout test.) Under a fault plan the invariant
    // that survives is the weaker one: verdicts replayed and the delta
    // stayed cheaper than the cold run.
    if FAULT_PLAN.get().is_some() {
        assert!(n.memo_hits > 0, "faulted re-run replayed no memo entries");
        assert!(
            n.rerun_calls < n.cold_calls,
            "faulted re-run ({} calls) not cheaper than cold ({} calls)",
            n.rerun_calls,
            n.cold_calls
        );
        println!("\n(fault plan armed: strict equivalence waived; faults re-draw per run)");
    } else {
        assert!(
            n.keys_match,
            "incremental re-run changed the output multiset"
        );
        assert!(
            n.prefix_free,
            "memoized prefix was re-billed: {} cold + {} delta != {} scratch",
            n.cold_calls, n.rerun_calls, n.scratch_calls
        );
    }
    println!(
        "\nappend speedup vs from-scratch: {:.1}x; delta billed {} call(s) for 1 new record",
        n.scratch_time / n.rerun_time.max(1e-9),
        n.rerun_calls
    );
    println!("expected shape: identical output multiset; the re-run bills only the new");
    println!("record through filter + convert, every memoized verdict replays for free.");
}

/// Shared plumbing for E20 and the bench-json serving gate. A corpus per
/// session, content-salted with the dataset name: template corpora can
/// collide byte-for-byte across seeds, and a collision would make
/// shared-cache hit counts depend on session interleaving instead of
/// being deterministic.
fn serve_corpus(ctx: &PzContext, dataset: &str, seed: u64, n_docs: usize) {
    let (docs, _) = pz_datagen::science::generate(pz_datagen::science::ScienceConfig {
        n_papers: n_docs,
        seed,
        ..Default::default()
    });
    let items: Vec<(String, String)> = docs
        .into_iter()
        .map(|d| (d.filename, format!("{}\n[workspace {dataset}]", d.content)))
        .collect();
    ctx.registry.register(std::sync::Arc::new(MemorySource::new(
        dataset,
        Schema::pdf_file(),
        items,
    )));
}

fn serve_session_plan(dataset: &str) -> LogicalPlan {
    Dataset::source(dataset)
        .filter(pz_datagen::science::FILTER_PREDICATE)
        .build()
        .expect("static plan is valid")
}

/// Sim seed for a serving tenant: a stable function of its id so solo and
/// concurrent hosts agree.
fn serve_tenant_seed(id: &str) -> u64 {
    3000 + id.bytes().map(u64::from).sum::<u64>()
}

fn serve_admission(slots: usize, queue: usize) -> pz_serve::ServeConfig {
    pz_serve::ServeConfig {
        admission: pz_serve::AdmissionConfig {
            max_concurrent_runs: slots,
            max_queued: queue,
            expected_run_secs: 30.0,
        },
        shared_cache: true,
    }
}

/// Provision a host with every tenant in `plan` and build the session
/// jobs (no deadlines: E20's parity leg compares solo vs concurrent
/// bills, and deadline hits would be load-dependent on the shared clock).
fn serve_provision(
    host: &mut pz_serve::ServeHost,
    tenants: &[pz_datagen::traffic::TenantTraffic],
) -> Vec<pz_serve::SessionJob> {
    let mut jobs = Vec::new();
    for t in tenants {
        host.add_tenant(
            pz_serve::TenantSpec::new(&t.id)
                .with_weight(t.weight)
                .with_seed(serve_tenant_seed(&t.id)),
        );
        let ctx = host.session_ctx(&t.id).unwrap();
        for s in &t.sessions {
            serve_corpus(&ctx, &s.session, s.corpus_seed, s.n_docs);
            let mut job =
                pz_serve::SessionJob::new(&t.id, &s.session, serve_session_plan(&s.session));
            if !t.interactive {
                job = job.batch();
            }
            jobs.push(job);
        }
    }
    jobs
}

/// Everything the E20 printout and the bench-json serving gate need, from
/// one measurement pass: a 4-tenant concurrent serve vs per-tenant solo
/// baselines (cost-bleed check), then the same traffic through a host
/// with a third of the capacity (overload shedding check).
/// (requests, tokens, cost) billed to one tenant's ledger.
type TenantUsage = (usize, usize, f64);

struct E20Numbers {
    metrics: pz_serve::ServeMetrics,
    scheduler_granted: u64,
    /// Per tenant: (id, concurrent usage, solo-baseline usage).
    bleed: Vec<(String, TenantUsage, TenantUsage)>,
    overload: pz_serve::ServeMetrics,
    /// Failures that were neither success nor a structured shed.
    overload_unstructured: usize,
    /// Every shed carried a reason and a positive retry-after hint.
    overload_sheds_structured: bool,
}

fn e20_measure() -> E20Numbers {
    let traffic = pz_datagen::traffic::generate(pz_datagen::traffic::TrafficConfig {
        tenants: 4,
        sessions_per_tenant: 3,
        interactive_fraction: 0.5,
        docs_per_session: 4,
        interactive_deadline_secs: 600.0,
        seed: 20,
    });
    let n_jobs = traffic.total_sessions();

    // Concurrent serve, capacity roomy enough that nothing sheds.
    let mut host = pz_serve::ServeHost::new(serve_admission(n_jobs, n_jobs));
    let jobs = serve_provision(&mut host, &traffic.tenants);
    let report = host.serve(jobs);

    // Per-tenant solo baselines over identical corpora and seeds.
    let mut bleed = Vec::new();
    for t in &traffic.tenants {
        let mut solo = pz_serve::ServeHost::new(serve_admission(n_jobs, n_jobs));
        let solo_jobs = serve_provision(&mut solo, std::slice::from_ref(t));
        solo.serve(solo_jobs);
        let ledger = |h: &pz_serve::ServeHost| {
            let l = &h.tenant(&t.id).unwrap().ctx.ledger;
            (
                l.total_requests(),
                l.total_usage().total_tokens(),
                l.total_cost_usd(),
            )
        };
        bleed.push((t.id.clone(), ledger(&host), ledger(&solo)));
    }

    // Overload: the same traffic against a third of the capacity — far
    // more simultaneous arrivals than slots + queue, so the host must
    // shed, and every shed must be a structured Overloaded error.
    let mut tight = pz_serve::ServeHost::new(serve_admission(2, 2));
    let tight_jobs = serve_provision(&mut tight, &traffic.tenants);
    let overload_report = tight.serve(tight_jobs);
    let mut unstructured = 0usize;
    let mut sheds_structured = true;
    for o in &overload_report.outcomes {
        match &o.result {
            Ok(_) => {}
            Err(PzError::Overloaded {
                reason,
                retry_after_secs,
            }) => {
                if reason.is_empty() || *retry_after_secs <= 0.0 {
                    sheds_structured = false;
                }
            }
            Err(_) => unstructured += 1,
        }
    }

    E20Numbers {
        metrics: report.metrics,
        scheduler_granted: report.scheduler.granted,
        bleed,
        overload: overload_report.metrics,
        overload_unstructured: unstructured,
        overload_sheds_structured: sheds_structured,
    }
}

/// E20 — multi-tenant serving: 4 tenants (2 interactive, 2 batch) serve
/// 12 concurrent sessions over the shared substrate. Isolation is
/// differential: every tenant's bill under concurrency matches its solo
/// bill. Then the same traffic hits a host with a third of the capacity
/// and must shed with structured errors instead of hanging.
fn e20_serving() {
    banner(
        "E20",
        "multi-tenant serving: fairness, cost isolation, overload shedding",
    );
    let n = e20_measure();
    println!(
        "{:<12} {:>9} {:>6} {:>11} {:>11} {:>10}",
        "tenant", "completed", "shed", "cost($)", "solo($)", "llm calls"
    );
    for tm in &n.metrics.per_tenant {
        let (_, con, solo) = n
            .bleed
            .iter()
            .find(|(id, _, _)| id == &tm.tenant)
            .expect("bleed row per tenant");
        println!(
            "{:<12} {:>9} {:>6} {:>11.4} {:>11.4} {:>10}",
            tm.tenant, tm.sessions_completed, tm.sessions_shed, con.2, solo.2, tm.llm_calls
        );
        assert_eq!(con.0, solo.0, "tenant {} request count shifted", tm.tenant);
        assert_eq!(con.1, solo.1, "tenant {} token count shifted", tm.tenant);
        assert!(
            (con.2 - solo.2).abs() < 1e-9,
            "tenant {} cost bled: {} concurrent vs {} solo",
            tm.tenant,
            con.2,
            solo.2
        );
    }
    println!(
        "\nnormal load: {}/{} completed, p50 {:.1}s p99 {:.1}s, {:.3} sessions/s, \
         Jain fairness {:.3}, {} scheduler grants",
        n.metrics.sessions_completed,
        n.metrics.sessions_submitted,
        n.metrics.p50_latency_secs,
        n.metrics.p99_latency_secs,
        n.metrics.throughput_per_sec,
        n.metrics.fairness_jain,
        n.scheduler_granted,
    );
    println!(
        "overload (1/3 capacity): {}/{} completed, {} shed ({:.0}%), p99 {:.1}s, \
         structured sheds: {}",
        n.overload.sessions_completed,
        n.overload.sessions_submitted,
        n.overload.sessions_shed,
        n.overload.shed_rate * 100.0,
        n.overload.p99_latency_secs,
        n.overload_sheds_structured && n.overload_unstructured == 0,
    );
    assert!(n.overload.sessions_shed > 0, "overloaded host shed nothing");
    println!("\nexpected shape: per-tenant bills identical solo vs concurrent (no cost");
    println!("bleed); under 3x overload the host sheds with structured Overloaded");
    println!("errors (reason + retry-after) while admitted sessions still complete.");
}

/// `repro bench-json [--out PATH]` — the CI perf gate. Re-measures the
/// E1/E14 headline comparison plus the parallelism sweep and writes the
/// numbers as machine-readable JSON. Floors are enforced *here* (nonzero
/// exit) so the workflow needs no JSON parsing: streaming must beat
/// materializing by >= 1.3x on virtual-clock time, and ledger cost must be
/// identical across every mode and parallelism level.
/// splitmix64 finalizer: decorrelated pseudo-random u64 per (stream, index)
/// — the same construction pz-datagen's stream uses, kept local so cell
/// vectors are a pure function of their coordinates.
fn mix64(stream: u64, index: u64) -> u64 {
    let mut z = stream
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Peak resident set size of this process in KiB, from Linux's `VmHWM`
/// high-water mark. `0` where /proc is unavailable (the scaling gate then
/// falls back to the deterministic resident-records gauge).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// E21 scan cell: chunked out-of-core scan + sparse UDF filter over a
/// streamed corpus of `n` documents. Runs in a subprocess (see
/// `scaling-cell` in `main`) so peak RSS is attributable to this cell.
fn scaling_cell_scan(n: usize) -> serde_json::Value {
    const CHUNK: usize = 4096;
    let ctx = PzContext::simulated();
    let cfg = pz_datagen::stream::StreamConfig::sized(n, 11);
    ctx.registry
        .register(std::sync::Arc::new(GeneratedSource::new(
            "stream-corpus",
            Schema::text_file(),
            n,
            move |i| {
                let d = pz_datagen::stream::doc_at(&cfg, i);
                (d.filename, d.content)
            },
        )));
    // Keep every 10,000th document, so survivors stay O(1) at every corpus
    // size and resident records measure the chunk, not the output.
    ctx.udfs.register_filter("sparse", |r: &DataRecord| {
        r.get("filename")
            .map(|v| v.as_display().ends_with("0000.txt"))
            .unwrap_or(false)
    });
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "stream-corpus".into(),
            },
            PhysicalOp::UdfFilter {
                udf: "sparse".into(),
            },
        ],
    };
    let t = Instant::now();
    let (records, stats) = pz_core::exec::execute_plan(
        &ctx,
        &plan,
        ExecutionConfig::sequential().with_scan_chunk_size(CHUNK),
    )
    .expect("scan cell");
    serde_json::json!({
        "kind": "scan",
        "n": n,
        "chunk": CHUNK,
        "elapsed_secs": t.elapsed().as_secs_f64(),
        "outputs": records.len(),
        "peak_resident_records": stats.peak_resident_records,
        "peak_rss_kb": peak_rss_kb(),
    })
}

/// E21 HNSW cell: build the graph index over `n` seeded vectors, then
/// measure batched top-k query time and recall against a flat (exact)
/// ground truth.
fn scaling_cell_hnsw(n: usize) -> serde_json::Value {
    const DIM: usize = 8;
    const K: usize = 10;
    const Q: usize = 32;
    let vec_at = |stream: u64, i: usize| -> Vec<f32> {
        (0..DIM)
            .map(|d| {
                let h = mix64(stream, (i * DIM + d) as u64);
                ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
            })
            .collect()
    };
    let mut index =
        pz_vector::HnswIndex::new(DIM, Metric::Euclidean, pz_vector::HnswConfig::default());
    let build_t = Instant::now();
    for i in 0..n {
        index.add(&vec_at(0xC0FFEE, i));
    }
    let build_secs = build_t.elapsed().as_secs_f64();
    let queries: Vec<Vec<f32>> = (0..Q).map(|q| vec_at(0xBEEF, q)).collect();
    // Best-of-3 batched pass to shed scheduler noise.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let _ = index.search_batch(&queries, K);
        best = best.min(t.elapsed().as_secs_f64());
    }
    let query_avg_us = best / Q as f64 * 1e6;
    // Exact ground truth from a flat scan over the same vectors.
    let mut flat = FlatIndex::new(DIM, Metric::Euclidean);
    for i in 0..n {
        flat.add(&vec_at(0xC0FFEE, i));
    }
    let hits = index.search_batch(&queries, K);
    let mut overlap = 0usize;
    for (q, h) in queries.iter().zip(&hits) {
        let truth: std::collections::HashSet<_> =
            flat.search(q, K).into_iter().map(|s| s.id).collect();
        overlap += h.iter().filter(|s| truth.contains(&s.id)).count();
    }
    let recall = overlap as f64 / (Q * K) as f64;
    serde_json::json!({
        "kind": "hnsw",
        "n": n,
        "dim": DIM,
        "k": K,
        "build_secs": build_secs,
        "query_avg_us": query_avg_us,
        "recall": recall,
        "peak_rss_kb": peak_rss_kb(),
    })
}

/// Subprocess entry point for one E21 cell (hidden `scaling-cell`
/// subcommand): run the cell, print its JSON on stdout.
fn scaling_cell(kind: &str, n: usize) {
    let doc = match kind {
        "scan" => scaling_cell_scan(n),
        "hnsw" => scaling_cell_hnsw(n),
        other => {
            eprintln!("unknown scaling cell kind {other:?} (want scan | hnsw)");
            std::process::exit(2);
        }
    };
    println!("{}", serde_json::to_string(&doc).expect("cell json"));
}

/// Spawn one E21 cell in a subprocess and parse its JSON line. Subprocess
/// isolation gives each cell a fresh address space, so `VmHWM` is the
/// cell's own high-water mark, not the max over every cell run so far.
fn run_scaling_cell(kind: &str, n: usize) -> serde_json::Value {
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .args(["scaling-cell", kind, &n.to_string()])
        .output()
        .expect("spawn scaling cell");
    assert!(
        out.status.success(),
        "scaling cell {kind}/{n} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .expect("scaling cell emitted no JSON");
    serde_json::from_str(line).expect("parse scaling cell JSON")
}

/// E21 numbers: the records-vs-time/memory scaling curve.
struct E21Numbers {
    /// (n, elapsed secs, peak RSS KiB, peak resident records, outputs)
    scan: Vec<(usize, f64, u64, u64, u64)>,
    /// (n, build secs, avg query µs, recall)
    hnsw: Vec<(usize, f64, f64, f64)>,
}

fn e21_measure(scan_sizes: &[usize], hnsw_sizes: &[usize]) -> E21Numbers {
    let scan = scan_sizes
        .iter()
        .map(|&n| {
            let v = run_scaling_cell("scan", n);
            (
                n,
                v.get("elapsed_secs")
                    .and_then(|x| x.as_f64())
                    .unwrap_or(0.0),
                v.get("peak_rss_kb").and_then(|x| x.as_u64()).unwrap_or(0),
                v.get("peak_resident_records")
                    .and_then(|x| x.as_u64())
                    .unwrap_or(0),
                v.get("outputs").and_then(|x| x.as_u64()).unwrap_or(0),
            )
        })
        .collect();
    let hnsw = hnsw_sizes
        .iter()
        .map(|&n| {
            let v = run_scaling_cell("hnsw", n);
            (
                n,
                v.get("build_secs").and_then(|x| x.as_f64()).unwrap_or(0.0),
                v.get("query_avg_us")
                    .and_then(|x| x.as_f64())
                    .unwrap_or(0.0),
                v.get("recall").and_then(|x| x.as_f64()).unwrap_or(0.0),
            )
        })
        .collect();
    E21Numbers { scan, hnsw }
}

/// The three E21 scaling gates, computed once and enforced by both the
/// `e21` experiment (scaling-gate CI job) and `bench-json` (BENCH_5.json).
struct E21Gates {
    scan_memory_growth: f64,
    scan_memory_flat: bool,
    hnsw_query_growth: f64,
    hnsw_query_sublinear: bool,
    hnsw_recall: f64,
    failures: Vec<String>,
}

const SCAN_MEMORY_GROWTH_CEILING: f64 = 1.5;
const HNSW_QUERY_GROWTH_CEILING: f64 = 10.0;
const HNSW_RECALL_FLOOR: f64 = 0.9;

fn e21_gates(nums: &E21Numbers) -> E21Gates {
    let mut failures = Vec::new();
    let (scan_small, scan_big) = (nums.scan[0], nums.scan[nums.scan.len() - 1]);
    // Prefer real RSS; where /proc is unavailable both cells report 0 and
    // we fall back to the executor's deterministic resident-records gauge.
    let scan_memory_growth = if scan_small.2 > 0 && scan_big.2 > 0 {
        scan_big.2 as f64 / scan_small.2 as f64
    } else {
        scan_big.3 as f64 / scan_small.3.max(1) as f64
    };
    let scan_memory_flat = scan_memory_growth <= SCAN_MEMORY_GROWTH_CEILING;
    if !scan_memory_flat {
        failures.push(format!(
            "peak scan memory grew {scan_memory_growth:.2}x from {} to {} records \
             (ceiling {SCAN_MEMORY_GROWTH_CEILING}x)",
            scan_small.0, scan_big.0
        ));
    }
    let (hnsw_small, hnsw_big) = (nums.hnsw[0], nums.hnsw[nums.hnsw.len() - 1]);
    let hnsw_query_growth = hnsw_big.2 / hnsw_small.2.max(1e-9);
    let hnsw_query_sublinear = hnsw_query_growth < HNSW_QUERY_GROWTH_CEILING;
    if !hnsw_query_sublinear {
        failures.push(format!(
            "hnsw query time grew {hnsw_query_growth:.2}x for a {}x corpus \
             (ceiling {HNSW_QUERY_GROWTH_CEILING}x)",
            hnsw_big.0 / hnsw_small.0.max(1)
        ));
    }
    let hnsw_recall = nums.hnsw.iter().map(|c| c.3).fold(f64::INFINITY, f64::min);
    if hnsw_recall < HNSW_RECALL_FLOOR {
        failures.push(format!(
            "hnsw recall@10 {hnsw_recall:.3} is below the {HNSW_RECALL_FLOOR} floor"
        ));
    }
    E21Gates {
        scan_memory_growth,
        scan_memory_flat,
        hnsw_query_growth,
        hnsw_query_sublinear,
        hnsw_recall,
        failures,
    }
}

/// Render the E21 curve + gate verdicts as a standalone JSON document
/// (`--scaling-out`; the scaling-gate CI job archives it).
fn e21_json(nums: &E21Numbers, gates: &E21Gates) -> serde_json::Value {
    serde_json::json!({
        "experiment": "E21 scaling curve (chunked scan + HNSW, 10k/100k/1M)",
        "scan_memory_flat": gates.scan_memory_flat,
        "scan_memory_growth": gates.scan_memory_growth,
        "scan_memory_growth_ceiling": SCAN_MEMORY_GROWTH_CEILING,
        "hnsw_query_sublinear": gates.hnsw_query_sublinear,
        "hnsw_query_growth": gates.hnsw_query_growth,
        "hnsw_query_growth_ceiling": HNSW_QUERY_GROWTH_CEILING,
        "hnsw_recall": gates.hnsw_recall,
        "hnsw_recall_floor": HNSW_RECALL_FLOOR,
        "pass": gates.failures.is_empty(),
        "failures": gates.failures,
        "scan": nums.scan.iter().map(|(n, secs, rss_kb, resident, outputs)| serde_json::json!({
            "records": n,
            "wall_secs": secs,
            "peak_rss_kb": rss_kb,
            "peak_resident_records": resident,
            "outputs": outputs,
        })).collect::<Vec<_>>(),
        "hnsw": nums.hnsw.iter().map(|(n, build, q_us, recall)| serde_json::json!({
            "records": n,
            "build_secs": build,
            "query_avg_us": q_us,
            "recall_at_10": recall,
        })).collect::<Vec<_>>(),
    })
}

/// E21: the out-of-core data plane at 10k / 100k / 1M records.
fn e21_scaling() {
    banner(
        "E21",
        "scaling curve: chunked scan memory stays flat, HNSW query stays sub-linear",
    );
    let nums = e21_measure(&[10_000, 100_000, 1_000_000], &[10_000, 1_000_000]);
    println!("chunked scan (chunk=4096, sparse UDF filter):");
    for (n, secs, rss, resident, outputs) in &nums.scan {
        println!(
            "  n={n:>9}  wall={secs:>7.2}s  peak_rss={:>7.1}MiB  resident_records={resident:>5}  out={outputs}",
            *rss as f64 / 1024.0
        );
    }
    println!("hnsw (dim=8, k=10, 32 queries, batched):");
    for (n, build, q_us, recall) in &nums.hnsw {
        println!("  n={n:>9}  build={build:>7.2}s  query={q_us:>8.1}us  recall@10={recall:.3}");
    }
    let gates = e21_gates(&nums);
    println!(
        "scan peak-memory growth 10k -> 1M: {:.2}x (ceiling {SCAN_MEMORY_GROWTH_CEILING}x)",
        gates.scan_memory_growth
    );
    println!(
        "hnsw query-time growth 10k -> 1M: {:.2}x for a 100x corpus (ceiling {HNSW_QUERY_GROWTH_CEILING}x)",
        gates.hnsw_query_growth
    );
    println!(
        "hnsw recall@10 (min over cells): {:.3} (floor {HNSW_RECALL_FLOOR})",
        gates.hnsw_recall
    );
    if let Some(out) = SCALING_OUT.get() {
        std::fs::write(
            out,
            serde_json::to_string_pretty(&e21_json(&nums, &gates)).expect("render scaling json"),
        )
        .expect("write scaling json");
        println!("wrote {out}");
    }
    if !gates.failures.is_empty() {
        for f in &gates.failures {
            eprintln!("SCALING GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("scaling gate: PASS");
}

fn bench_json(out: &str) {
    banner("BENCH", "perf gate: E1/E14 times and ledger cost (JSON)");
    const SPEEDUP_FLOOR: f64 = 1.3;
    let mut runs: Vec<(String, usize, f64, f64, usize, Vec<String>)> = Vec::new();
    for (name, parallelism, config) in [
        ("materializing", 1usize, ExecutionConfig::sequential()),
        ("streaming", 1, streaming_cfg(1)),
        ("streaming", 4, streaming_cfg(4)),
        ("streaming", 8, streaming_cfg(8)),
    ] {
        let (ctx, _truth) = demo_context();
        let outcome = execute(&ctx, &demo_plan(), &Policy::MaxQuality, config).expect("bench run");
        runs.push((
            name.to_string(),
            parallelism,
            outcome.stats.total_time_secs,
            ctx.ledger.total_cost_usd(),
            outcome.records.len(),
            record_multiset(&outcome.records),
        ));
        println!(
            "{:<16} p={:<2} time={:>7.1}s cost=${:.3} records={}",
            name,
            parallelism,
            outcome.stats.total_time_secs,
            ctx.ledger.total_cost_usd(),
            outcome.records.len(),
        );
    }
    let mut failures: Vec<String> = Vec::new();
    let (base_cost, base_keys) = (runs[0].3, runs[0].5.clone());
    for (name, p, _, cost, _, keys) in &runs[1..] {
        if (cost - base_cost).abs() > 1e-9 {
            failures.push(format!(
                "ledger cost differs across modes: materializing ${base_cost} vs {name} p={p} ${cost}"
            ));
        }
        if keys != &base_keys {
            failures.push(format!(
                "output multiset differs: materializing vs {name} p={p}"
            ));
        }
    }
    let speedup = runs[0].2 / runs[1].2;
    if speedup < SPEEDUP_FLOOR {
        failures.push(format!(
            "streaming-vs-materializing speedup {speedup:.2}x is below the {SPEEDUP_FLOOR}x floor"
        ));
    }
    // Observability overhead: arming the profiler must stay ~free. Real
    // (wall-clock) time of the same streaming run with the profiler off vs
    // on, min-of-5 to shed scheduler noise.
    const OBS_OVERHEAD_CEILING_PCT: f64 = 5.0;
    let measure = |profiling: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let (ctx, _truth) = demo_context();
            ctx.tracer.set_profiling(profiling);
            let t = Instant::now();
            execute(&ctx, &demo_plan(), &Policy::MaxQuality, streaming_cfg(8))
                .expect("overhead run");
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    measure(false); // warm-up
    let off = measure(false);
    let on = measure(true);
    let obs_overhead_pct = ((on - off) / off.max(1e-9) * 100.0).max(0.0);
    println!(
        "profiler overhead: {off:.4}s off / {on:.4}s on -> {obs_overhead_pct:.2}% (ceiling {OBS_OVERHEAD_CEILING_PCT}%)"
    );
    if obs_overhead_pct >= OBS_OVERHEAD_CEILING_PCT {
        failures.push(format!(
            "profiler overhead {obs_overhead_pct:.2}% is at or above the {OBS_OVERHEAD_CEILING_PCT}% ceiling"
        ));
    }
    // Adaptive brownout gate (E18): under the scripted brownout the
    // adaptive run must beat the static one on virtual-clock time while
    // producing the identical output multiset.
    const ADAPTIVE_SPEEDUP_FLOOR: f64 = 1.2;
    let (static_time, _, static_keys, _) = e18_brownout_run(false);
    let (adaptive_time, _, adaptive_keys, replans) = e18_brownout_run(true);
    let adaptive_brownout_speedup = static_time / adaptive_time.max(1e-9);
    println!(
        "adaptive brownout: static {static_time:.1}s / adaptive {adaptive_time:.1}s -> \
         {adaptive_brownout_speedup:.2}x ({} replan(s), floor {ADAPTIVE_SPEEDUP_FLOOR}x)",
        replans.len()
    );
    if static_keys != adaptive_keys {
        failures.push("adaptive brownout run changed the output multiset".to_string());
    }
    if replans.is_empty() {
        failures.push("adaptive brownout run recorded no replan".to_string());
    }
    if adaptive_brownout_speedup < ADAPTIVE_SPEEDUP_FLOOR {
        failures.push(format!(
            "adaptive brownout speedup {adaptive_brownout_speedup:.2}x is below the \
             {ADAPTIVE_SPEEDUP_FLOOR}x floor"
        ));
    }
    // Incremental append gate (E19): after a 1-document append the
    // delta-driven re-run must replay the memoized prefix for free (zero
    // re-billed calls, O(1) calls for the new record) and beat the
    // from-scratch run by >= 10x on virtual-clock time.
    const INCREMENTAL_SPEEDUP_FLOOR: f64 = 10.0;
    let inc = e19_measure();
    let incremental_append_speedup = inc.scratch_time / inc.rerun_time.max(1e-9);
    println!(
        "incremental append: scratch {:.1}s / re-run {:.1}s -> {incremental_append_speedup:.1}x \
         ({} delta call(s), {} replay(s), floor {INCREMENTAL_SPEEDUP_FLOOR}x)",
        inc.scratch_time, inc.rerun_time, inc.rerun_calls, inc.memo_hits
    );
    if !inc.keys_match {
        failures.push("incremental re-run changed the output multiset".to_string());
    }
    if !inc.prefix_free {
        failures.push(format!(
            "incremental re-run re-billed the memoized prefix: {} cold + {} delta != {} scratch",
            inc.cold_calls, inc.rerun_calls, inc.scratch_calls
        ));
    }
    if inc.rerun_calls > 2 {
        failures.push(format!(
            "incremental re-run billed {} calls for a 1-record append (want <= 2)",
            inc.rerun_calls
        ));
    }
    if incremental_append_speedup < INCREMENTAL_SPEEDUP_FLOOR {
        failures.push(format!(
            "incremental append speedup {incremental_append_speedup:.1}x is below the \
             {INCREMENTAL_SPEEDUP_FLOOR}x floor"
        ));
    }
    // Serving gate (E20): under concurrent multi-tenant load, completed
    // sessions split fairly (Jain >= floor), no tenant's bill moves a cent
    // relative to its solo run, and a 3x-overloaded host sheds with
    // structured errors while keeping p99 bounded.
    const SERVE_FAIRNESS_FLOOR: f64 = 0.8;
    const SERVE_P99_CEILING_SECS: f64 = 100_000.0;
    let serve = e20_measure();
    let cost_bleed_max = serve
        .bleed
        .iter()
        .map(|(_, con, solo)| (con.2 - solo.2).abs())
        .fold(0.0f64, f64::max);
    println!(
        "serving: Jain {:.3} (floor {SERVE_FAIRNESS_FLOOR}), max cost bleed ${:.2e}, \
         overload shed {}/{} p99 {:.1}s",
        serve.metrics.fairness_jain,
        cost_bleed_max,
        serve.overload.sessions_shed,
        serve.overload.sessions_submitted,
        serve.overload.p99_latency_secs,
    );
    if serve.metrics.fairness_jain < SERVE_FAIRNESS_FLOOR {
        failures.push(format!(
            "serving fairness (Jain) {:.3} is below the {SERVE_FAIRNESS_FLOOR} floor",
            serve.metrics.fairness_jain
        ));
    }
    for (id, con, solo) in &serve.bleed {
        if con.0 != solo.0 || con.1 != solo.1 {
            failures.push(format!(
                "serving cost bleed: tenant {id} billed {}/{} requests/tokens concurrent \
                 vs {}/{} solo",
                con.0, con.1, solo.0, solo.1
            ));
        }
        if (con.2 - solo.2).abs() > 1e-9 {
            failures.push(format!(
                "serving cost bleed: tenant {id} cost ${} concurrent vs ${} solo",
                con.2, solo.2
            ));
        }
    }
    if serve.overload.sessions_shed == 0 {
        failures.push("overloaded serving host shed no sessions".to_string());
    }
    if serve.overload_unstructured > 0 || !serve.overload_sheds_structured {
        failures.push(format!(
            "overload sheds were not all structured Overloaded errors \
             ({} unstructured failures)",
            serve.overload_unstructured
        ));
    }
    if serve.overload.p99_latency_secs >= SERVE_P99_CEILING_SECS {
        failures.push(format!(
            "overload p99 latency {:.1}s is at or above the {SERVE_P99_CEILING_SECS}s ceiling",
            serve.overload.p99_latency_secs
        ));
    }
    // Scaling gate (E21): the data plane must hold at 1M records. Peak scan
    // memory stays flat as the corpus grows 100x (chunked out-of-core scan),
    // HNSW query time stays sub-linear in corpus size, and HNSW recall vs an
    // exact flat scan stays >= 0.9. Each cell runs in a subprocess so its
    // VmHWM high-water mark is its own.
    let e21 = e21_measure(&[10_000, 100_000, 1_000_000], &[10_000, 1_000_000]);
    let gates = e21_gates(&e21);
    println!(
        "scaling: scan peak-memory growth {:.2}x (ceiling {SCAN_MEMORY_GROWTH_CEILING}x), \
         hnsw query growth {:.2}x (ceiling {HNSW_QUERY_GROWTH_CEILING}x), \
         hnsw recall {:.3} (floor {HNSW_RECALL_FLOOR})",
        gates.scan_memory_growth, gates.hnsw_query_growth, gates.hnsw_recall,
    );
    failures.extend(gates.failures.iter().cloned());
    let doc = serde_json::json!({
        "experiment": "E1/E14 demo plan (Scan -> LLMFilter -> LLMConvert, MaxQuality)",
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_streaming_vs_materializing": speedup,
        "adaptive_brownout_speedup": adaptive_brownout_speedup,
        "adaptive_brownout_speedup_floor": ADAPTIVE_SPEEDUP_FLOOR,
        "adaptive_brownout_replans": replans.len(),
        "incremental_append_speedup": incremental_append_speedup,
        "incremental_append_speedup_floor": INCREMENTAL_SPEEDUP_FLOOR,
        "incremental_rerun_llm_calls": inc.rerun_calls,
        "incremental_memo_replays": inc.memo_hits,
        "obs_overhead_pct": obs_overhead_pct,
        "obs_overhead_ceiling_pct": OBS_OVERHEAD_CEILING_PCT,
        "serve_fairness_jain": serve.metrics.fairness_jain,
        "serve_fairness_floor": SERVE_FAIRNESS_FLOOR,
        "serve_cost_bleed_max_usd": cost_bleed_max,
        "serve_p50_latency_secs": serve.metrics.p50_latency_secs,
        "serve_p99_latency_secs": serve.metrics.p99_latency_secs,
        "serve_throughput_per_sec": serve.metrics.throughput_per_sec,
        "serve_overload_shed_rate": serve.overload.shed_rate,
        "serve_overload_p99_secs": serve.overload.p99_latency_secs,
        "serve_overload_p99_ceiling_secs": SERVE_P99_CEILING_SECS,
        "serve_sheds_structured": serve.overload_sheds_structured && serve.overload_unstructured == 0,
        "scan_memory_flat": gates.scan_memory_flat,
        "scan_memory_growth": gates.scan_memory_growth,
        "scan_memory_growth_ceiling": SCAN_MEMORY_GROWTH_CEILING,
        "hnsw_query_sublinear": gates.hnsw_query_sublinear,
        "hnsw_query_growth": gates.hnsw_query_growth,
        "hnsw_query_growth_ceiling": HNSW_QUERY_GROWTH_CEILING,
        "hnsw_recall": gates.hnsw_recall,
        "hnsw_recall_floor": HNSW_RECALL_FLOOR,
        "scaling_curve": serde_json::json!({
            "scan": e21.scan.iter().map(|(n, secs, rss_kb, resident, outputs)| serde_json::json!({
                "records": n,
                "wall_secs": secs,
                "peak_rss_kb": rss_kb,
                "peak_resident_records": resident,
                "outputs": outputs,
            })).collect::<Vec<_>>(),
            "hnsw": e21.hnsw.iter().map(|(n, build, q_us, recall)| serde_json::json!({
                "records": n,
                "build_secs": build,
                "query_avg_us": q_us,
                "recall_at_10": recall,
            })).collect::<Vec<_>>(),
        }),
        "pass": failures.is_empty(),
        "failures": failures,
        "runs": runs.iter().map(|(name, p, time, cost, records, _)| serde_json::json!({
            "mode": name,
            "parallelism": p,
            "virtual_time_secs": time,
            "ledger_cost_usd": cost,
            "records": records,
        })).collect::<Vec<_>>(),
    });
    std::fs::write(
        out,
        serde_json::to_string_pretty(&doc).expect("render json"),
    )
    .expect("write bench json");
    println!("speedup (streaming p=1 vs materializing): {speedup:.2}x (floor {SPEEDUP_FLOOR}x)");
    println!("wrote {out}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("PERF GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("perf gate: PASS");
}
