//! # pz-vector — vector store substrate
//!
//! The PalimpChat paper's introduction motivates declarative AI frameworks
//! partly by the pain of "coordinating multiple software stacks — vector
//! databases, relational operators, and novel programming practices". This
//! crate is the vector-database leg of that stack for the reproduction: an
//! in-process store with exact ([`FlatIndex`]) and approximate
//! ([`IvfIndex`], inverted-file with k-means centroids; [`HnswIndex`],
//! layered navigable-small-world graph) top-k search, used by Palimpzest's
//! `Retrieve` operator and by embedding-based physical filter
//! implementations. [`Collection`] routes queries flat → IVF → HNSW as a
//! collection grows, keeping search sub-linear at a million vectors.
//!
//! Everything is deterministic: k-means and HNSW level assignment use
//! caller-supplied seeds and the tie-breaking rules are fixed, so index
//! builds are reproducible.

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod metric;
pub mod store;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use metric::Metric;
pub use store::{Collection, SearchHit, VectorStore, VectorStoreError};

/// Identifier assigned to a vector when it is added to an index.
pub type VecId = u64;
