//! Exact (brute-force) index.
//!
//! Scans every stored vector. O(n·d) per query, but exact — it doubles as
//! the ground truth against which [`crate::ivf::IvfIndex`] recall is
//! measured (experiment E10).

use crate::metric::Metric;
use crate::VecId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scored {
    pub id: VecId,
    pub score: f32,
}

// Min-heap entry (reversed ordering) for top-k selection.
#[derive(PartialEq)]
struct HeapEntry(Scored);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the *worst* element sits on top so it can be evicted.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Select the `k` best-scored items from an iterator, sorted by descending
/// score (ties broken by ascending id, so results are deterministic).
pub(crate) fn top_k(items: impl Iterator<Item = Scored>, k: usize) -> Vec<Scored> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for item in items {
        heap.push(HeapEntry(item));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<Scored> = heap.into_iter().map(|e| e.0).collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
    out
}

/// Exact top-k index.
#[derive(Clone, Debug)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<VecId>,
    data: Vec<f32>, // row-major, len = ids.len() * dim
    next_id: VecId,
}

impl FlatIndex {
    /// Create an index for `dim`-dimensional vectors.
    pub fn new(dim: usize, metric: Metric) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            metric,
            ids: Vec::new(),
            data: Vec::new(),
            next_id: 0,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn metric(&self) -> Metric {
        self.metric
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Add a vector, returning its assigned id.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn add(&mut self, v: &[f32]) -> VecId {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let id = self.next_id;
        self.next_id += 1;
        self.ids.push(id);
        self.data.extend_from_slice(v);
        id
    }

    /// Fetch a stored vector by id (linear scan; ids are append-ordered so
    /// this is a direct offset when nothing was removed).
    pub fn get(&self, id: VecId) -> Option<&[f32]> {
        let pos = self.ids.iter().position(|&i| i == id)?;
        Some(&self.data[pos * self.dim..(pos + 1) * self.dim])
    }

    /// Exact top-k search.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Scored> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let metric = self.metric;
        top_k(
            self.ids.iter().enumerate().map(|(pos, &id)| Scored {
                id,
                score: metric.score(query, &self.data[pos * self.dim..(pos + 1) * self.dim]),
            }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_index() -> FlatIndex {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        idx.add(&[1.0, 0.0]); // id 0
        idx.add(&[0.0, 1.0]); // id 1
        idx.add(&[0.7, 0.7]); // id 2
        idx
    }

    #[test]
    fn search_orders_by_similarity() {
        let idx = small_index();
        let hits = idx.search(&[1.0, 0.1], 3);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert_eq!(hits[2].id, 1);
    }

    #[test]
    fn k_larger_than_len() {
        let idx = small_index();
        assert_eq!(idx.search(&[1.0, 0.0], 10).len(), 3);
    }

    #[test]
    fn k_zero_is_empty() {
        let idx = small_index();
        assert!(idx.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new(4, Metric::Dot);
        assert!(idx.search(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn ids_are_sequential() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        assert_eq!(idx.add(&[1.0]), 0);
        assert_eq!(idx.add(&[2.0]), 1);
        assert_eq!(idx.get(1), Some(&[2.0][..]));
        assert_eq!(idx.get(99), None);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_wrong_dim_panics() {
        FlatIndex::new(3, Metric::Cosine).add(&[1.0]);
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        for _ in 0..5 {
            idx.add(&[1.0]);
        }
        let hits = idx.search(&[1.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    proptest! {
        #[test]
        fn top_k_matches_full_sort(
            scores in proptest::collection::vec(-100.0f32..100.0, 0..50),
            k in 0usize..10,
        ) {
            let items: Vec<Scored> = scores.iter().enumerate()
                .map(|(i, &s)| Scored { id: i as VecId, score: s })
                .collect();
            let got = top_k(items.clone().into_iter(), k);
            let mut want = items;
            want.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
            want.truncate(k);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn search_results_sorted_desc(
            vectors in proptest::collection::vec(
                proptest::collection::vec(-1.0f32..1.0, 4), 1..30),
            query in proptest::collection::vec(-1.0f32..1.0, 4),
        ) {
            let mut idx = FlatIndex::new(4, Metric::Euclidean);
            for v in &vectors {
                idx.add(v);
            }
            let hits = idx.search(&query, 10);
            for w in hits.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
        }
    }
}
