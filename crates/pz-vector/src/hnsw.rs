//! HNSW (hierarchical navigable small world) graph index.
//!
//! The third rung of the store's routing ladder (flat → IVF → HNSW):
//! a layered proximity graph searched greedily from a single entry point.
//! Query cost grows ~logarithmically with collection size — the property
//! the 1M-vector scaling gate asserts — versus IVF's O(n/√n·nprobe) probe
//! scans and flat's O(n).
//!
//! Determinism: level assignment is seeded (splitmix64 over
//! `(seed, node id)`), inserts are order-dependent but the store only ever
//! inserts in id order, and every candidate ordering breaks score ties by
//! ascending id. Same seed + same insert sequence → identical graph →
//! identical top-k, which the recall/determinism suite pins.
//!
//! Unlike [`IvfIndex`](crate::ivf::IvfIndex) (batch-built, stale between
//! rebuilds) the graph is *incremental*: every insert is indexed before
//! `add` returns, so there is no unindexed window at all.

use crate::flat::{top_k, Scored};
use crate::metric::Metric;
use crate::VecId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// HNSW build/search parameters.
#[derive(Clone, Copy, Debug)]
pub struct HnswConfig {
    /// Max neighbors per node on layers > 0; layer 0 keeps `2*m`.
    pub m: usize,
    /// Candidate-list width while inserting.
    pub ef_construction: usize,
    /// Candidate-list width while searching (raised to `k` if smaller).
    pub ef_search: usize,
    /// Seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 12,
            ef_construction: 64,
            ef_search: 64,
            seed: 7,
        }
    }
}

// Max-heap entry: best score on top, ties by ascending id.
#[derive(PartialEq)]
struct MaxEntry(Scored);

impl Eq for MaxEntry {}

impl Ord for MaxEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .score
            .total_cmp(&other.0.score)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for MaxEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// Min-heap entry: worst score on top so it can be evicted.
#[derive(PartialEq)]
struct MinEntry(Scored);

impl Eq for MinEntry {}

impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Incremental HNSW index. Ids are assigned sequentially by insertion
/// order (matching [`FlatIndex`](crate::flat::FlatIndex)), so the store
/// can keep one payload table for every index tier.
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    config: HnswConfig,
    /// Row-major vector storage, len = n * dim.
    data: Vec<f32>,
    /// links[node][layer] = neighbor ids; node's top layer =
    /// `links[node].len() - 1`.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry node (highest-layer node seen so far).
    entry: Option<u32>,
}

impl HnswIndex {
    pub fn new(dim: usize, metric: Metric, config: HnswConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(config.m >= 2, "m must be at least 2");
        Self {
            dim,
            metric,
            config,
            data: Vec::new(),
            links: Vec::new(),
            entry: None,
        }
    }

    /// Build over `(id, vector)` pairs whose ids must be `0..n` in order —
    /// the store's append-only id discipline.
    pub fn build(
        dim: usize,
        metric: Metric,
        config: HnswConfig,
        items: &[(VecId, Vec<f32>)],
    ) -> Self {
        let mut idx = Self::new(dim, metric, config);
        for (expected, (id, v)) in items.iter().enumerate() {
            assert_eq!(*id, expected as VecId, "ids must be sequential from 0");
            idx.add(v);
        }
        idx
    }

    pub fn len(&self) -> usize {
        self.links.len()
    }

    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn vector(&self, id: u32) -> &[f32] {
        let pos = id as usize * self.dim;
        &self.data[pos..pos + self.dim]
    }

    fn score(&self, q: &[f32], id: u32) -> f32 {
        self.metric.score(q, self.vector(id))
    }

    /// Seeded geometric level draw: `floor(-ln(u) / ln(m))`, capped so a
    /// pathological draw can't build a skyscraper.
    fn level_for(&self, id: u64) -> usize {
        let mut z = self
            .config
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // u in (0, 1]: never exactly 0 so ln is finite.
        let u = ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let ml = 1.0 / (self.config.m as f64).ln();
        ((-u.ln() * ml) as usize).min(16)
    }

    fn max_neighbors(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Greedy best-first search on one layer from `entry`, keeping the
    /// `ef` best candidates seen.
    fn search_layer(&self, q: &[f32], entry: u32, ef: usize, layer: usize) -> Vec<Scored> {
        let start = Scored {
            id: entry as VecId,
            score: self.score(q, entry),
        };
        let mut visited: HashSet<u32> = HashSet::with_capacity(ef * self.config.m);
        visited.insert(entry);
        let mut candidates = BinaryHeap::new();
        candidates.push(MaxEntry(start));
        let mut results = BinaryHeap::new();
        results.push(MinEntry(start));
        while let Some(MaxEntry(best)) = candidates.pop() {
            let worst = results.peek().map(|e: &MinEntry| e.0.score).unwrap();
            if results.len() >= ef && best.score < worst {
                break;
            }
            let node = best.id as u32;
            if layer >= self.links[node as usize].len() {
                continue;
            }
            for &nb in &self.links[node as usize][layer] {
                if !visited.insert(nb) {
                    continue;
                }
                let s = Scored {
                    id: nb as VecId,
                    score: self.score(q, nb),
                };
                let worst = results.peek().map(|e: &MinEntry| e.0.score).unwrap();
                if results.len() < ef || s.score > worst {
                    candidates.push(MaxEntry(s));
                    results.push(MinEntry(s));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|e| e.0).collect();
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        out
    }

    /// Greedy single-step descent through layers above `target`.
    fn descend(&self, q: &[f32], mut ep: u32, from_layer: usize, target: usize) -> u32 {
        let mut layer = from_layer;
        while layer > target {
            let mut improved = true;
            let mut best = self.score(q, ep);
            while improved {
                improved = false;
                if layer < self.links[ep as usize].len() {
                    for &nb in &self.links[ep as usize][layer] {
                        let s = self.score(q, nb);
                        if s > best {
                            best = s;
                            ep = nb;
                            improved = true;
                        }
                    }
                }
            }
            layer -= 1;
        }
        ep
    }

    /// Insert a vector, indexing it immediately. Returns its id.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn add(&mut self, v: &[f32]) -> VecId {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let id = self.links.len() as u32;
        let level = self.level_for(id as u64);
        self.data.extend_from_slice(v);
        self.links.push(vec![Vec::new(); level + 1]);
        let Some(entry) = self.entry else {
            self.entry = Some(id);
            return id as VecId;
        };
        let entry_top = self.links[entry as usize].len() - 1;
        let mut ep = self.descend(v, entry, entry_top, level.min(entry_top));
        for layer in (0..=level.min(entry_top)).rev() {
            let found = self.search_layer(v, ep, self.config.ef_construction, layer);
            let cap = self.max_neighbors(layer);
            let chosen: Vec<u32> = found.iter().take(cap).map(|s| s.id as u32).collect();
            for &nb in &chosen {
                self.links[id as usize][layer].push(nb);
                self.links[nb as usize][layer].push(id);
                // Shrink an overfull neighbor back to its cap, keeping the
                // best-scored links (ties by id, as everywhere) — except
                // the just-added back-link, which always survives this
                // shrink: otherwise an outlier's in-links would all be
                // pruned on arrival, orphaning it from graph traversal.
                if self.links[nb as usize][layer].len() > cap {
                    let nv: Vec<f32> = self.vector(nb).to_vec();
                    let mut scored: Vec<Scored> = self.links[nb as usize][layer]
                        .iter()
                        .map(|&x| Scored {
                            id: x as VecId,
                            score: self.metric.score(&nv, self.vector(x)),
                        })
                        .collect();
                    scored
                        .sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
                    scored.truncate(cap);
                    let mut kept: Vec<u32> = scored.iter().map(|s| s.id as u32).collect();
                    if !kept.contains(&id) {
                        *kept.last_mut().expect("cap >= 2") = id;
                    }
                    self.links[nb as usize][layer] = kept;
                }
            }
            ep = chosen.first().copied().unwrap_or(ep);
        }
        if level > entry_top {
            self.entry = Some(id);
        }
        id as VecId
    }

    /// Approximate top-k search.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Scored> {
        self.search_with_ef(query, k, self.config.ef_search)
    }

    /// Approximate top-k with an explicit candidate width (for recall
    /// sweeps). `ef` is raised to `k` if smaller.
    pub fn search_with_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<Scored> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let entry_top = self.links[entry as usize].len() - 1;
        let ep = self.descend(query, entry, entry_top, 0);
        let found = self.search_layer(query, ep, ef.max(k), 0);
        top_k(found.into_iter(), k)
    }

    /// Batched top-k: one graph descent per query, results in query order.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<Scored>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_corpus(n: usize, dim: usize, seed: u64) -> Vec<(VecId, Vec<f32>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
                (i as VecId, v)
            })
            .collect()
    }

    fn recall_vs_flat(corpus: &[(VecId, Vec<f32>)], dim: usize, metric: Metric) -> f64 {
        let idx = HnswIndex::build(dim, metric, HnswConfig::default(), corpus);
        let mut flat = FlatIndex::new(dim, metric);
        for (_, v) in corpus {
            flat.add(v);
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for qi in (0..corpus.len()).step_by(corpus.len() / 20) {
            let q = &corpus[qi].1;
            let truth: Vec<VecId> = flat.search(q, 10).iter().map(|h| h.id).collect();
            let approx: Vec<VecId> = idx.search(q, 10).iter().map(|h| h.id).collect();
            hit += truth.iter().filter(|t| approx.contains(t)).count();
            total += truth.len();
        }
        hit as f64 / total as f64
    }

    #[test]
    fn empty_and_tiny() {
        let idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default());
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 4], 5).is_empty());
        let mut idx = HnswIndex::new(2, Metric::Dot, HnswConfig::default());
        assert_eq!(idx.add(&[1.0, 0.0]), 0);
        assert_eq!(idx.add(&[0.0, 1.0]), 1);
        let hits = idx.search(&[1.0, 0.1], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits.len(), 2);
        assert!(idx.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_wrong_dim_panics() {
        HnswIndex::new(3, Metric::Cosine, HnswConfig::default()).add(&[1.0]);
    }

    #[test]
    fn recall_against_flat_ground_truth() {
        for (n, seed) in [(1000usize, 1u64), (3000, 2)] {
            let corpus = random_corpus(n, 8, seed);
            let r = recall_vs_flat(&corpus, 8, Metric::Euclidean);
            assert!(r >= 0.9, "recall {r} at n={n}");
        }
    }

    #[test]
    fn recall_cosine() {
        let corpus = random_corpus(2000, 16, 3);
        let r = recall_vs_flat(&corpus, 16, Metric::Cosine);
        assert!(r >= 0.9, "recall {r}");
    }

    #[test]
    fn deterministic_same_seed_same_graph_same_topk() {
        let corpus = random_corpus(800, 8, 4);
        let a = HnswIndex::build(8, Metric::Euclidean, HnswConfig::default(), &corpus);
        let b = HnswIndex::build(8, Metric::Euclidean, HnswConfig::default(), &corpus);
        assert_eq!(a.links, b.links, "same seed must build the same graph");
        assert_eq!(a.entry, b.entry);
        for qi in [0usize, 123, 799] {
            let q = &corpus[qi].1;
            assert_eq!(a.search(q, 10), b.search(q, 10), "query {qi}");
        }
    }

    #[test]
    fn different_seed_different_graph() {
        let corpus = random_corpus(500, 8, 5);
        let a = HnswIndex::build(8, Metric::Euclidean, HnswConfig::default(), &corpus);
        let other = HnswConfig {
            seed: 99,
            ..Default::default()
        };
        let b = HnswIndex::build(8, Metric::Euclidean, other, &corpus);
        assert_ne!(a.links, b.links);
    }

    #[test]
    fn incremental_insert_matches_batch_build() {
        let corpus = random_corpus(400, 4, 6);
        let batch = HnswIndex::build(4, Metric::Euclidean, HnswConfig::default(), &corpus);
        let mut inc = HnswIndex::new(4, Metric::Euclidean, HnswConfig::default());
        for (_, v) in &corpus {
            inc.add(v);
        }
        assert_eq!(batch.links, inc.links);
    }

    #[test]
    fn recall_improves_with_ef() {
        let corpus = random_corpus(2000, 8, 7);
        let idx = HnswIndex::build(8, Metric::Euclidean, HnswConfig::default(), &corpus);
        let mut flat = FlatIndex::new(8, Metric::Euclidean);
        for (_, v) in &corpus {
            flat.add(v);
        }
        let recall_at = |ef: usize| -> f64 {
            let mut hit = 0;
            let mut total = 0;
            for qi in (0..2000).step_by(100) {
                let q = &corpus[qi].1;
                let truth: Vec<VecId> = flat.search(q, 10).iter().map(|h| h.id).collect();
                let approx: Vec<VecId> =
                    idx.search_with_ef(q, 10, ef).iter().map(|h| h.id).collect();
                hit += truth.iter().filter(|t| approx.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total as f64
        };
        let narrow = recall_at(10);
        let wide = recall_at(200);
        assert!(wide >= narrow, "narrow={narrow} wide={wide}");
        assert!(wide >= 0.95, "wide={wide}");
    }

    #[test]
    fn search_batch_matches_single() {
        let corpus = random_corpus(300, 4, 8);
        let idx = HnswIndex::build(4, Metric::Cosine, HnswConfig::default(), &corpus);
        let queries: Vec<Vec<f32>> = corpus.iter().take(5).map(|(_, v)| v.clone()).collect();
        let batched = idx.search_batch(&queries, 3);
        for (q, hits) in queries.iter().zip(&batched) {
            assert_eq!(hits, &idx.search(q, 3));
        }
    }

    #[test]
    fn self_query_finds_self() {
        let corpus = random_corpus(1000, 8, 9);
        let idx = HnswIndex::build(8, Metric::Euclidean, HnswConfig::default(), &corpus);
        let mut found = 0;
        for qi in (0..1000).step_by(50) {
            let hits = idx.search(&corpus[qi].1, 1);
            if hits.first().map(|h| h.id) == Some(qi as VecId) {
                found += 1;
            }
        }
        assert!(found >= 18, "self-hit {found}/20");
    }

    #[test]
    #[should_panic(expected = "ids must be sequential")]
    fn build_rejects_gapped_ids() {
        HnswIndex::build(
            2,
            Metric::Dot,
            HnswConfig::default(),
            &[(5, vec![1.0, 2.0])],
        );
    }
}
