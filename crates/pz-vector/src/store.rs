//! Collection-oriented store facade.
//!
//! What the `Retrieve` operator actually talks to: named collections of
//! `(vector, payload)` pairs with metric-aware top-k search. Small
//! collections are scanned exactly; once a collection crosses
//! [`Collection::IVF_THRESHOLD`] the store builds an IVF index and routes
//! queries through it (rebuilding lazily after enough inserts).

use crate::flat::FlatIndex;
use crate::ivf::{IvfConfig, IvfIndex};
use crate::metric::Metric;
use crate::VecId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use thiserror::Error;

/// Store-level errors.
#[derive(Clone, Debug, Error, PartialEq, Eq)]
pub enum VectorStoreError {
    #[error("collection not found: {0}")]
    CollectionNotFound(String),
    #[error("collection already exists: {0}")]
    CollectionExists(String),
    #[error("dimension mismatch: expected {expected}, got {got}")]
    DimensionMismatch { expected: usize, got: usize },
    #[error("snapshot error: {0}")]
    Snapshot(String),
}

/// A search result: the payload attached at insert time plus the score.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchHit {
    pub id: VecId,
    pub score: f32,
    pub payload: String,
}

/// One named collection.
pub struct Collection {
    dim: usize,
    metric: Metric,
    flat: FlatIndex,
    payloads: Vec<String>,
    ivf: Option<IvfIndex>,
    inserts_since_build: usize,
}

impl Collection {
    /// Below this size, exact scan; above, IVF.
    pub const IVF_THRESHOLD: usize = 1024;
    /// Rebuild the IVF index after this many unindexed inserts.
    const REBUILD_SLACK: usize = 256;

    fn new(dim: usize, metric: Metric) -> Self {
        Self {
            dim,
            metric,
            flat: FlatIndex::new(dim, metric),
            payloads: Vec::new(),
            ivf: None,
            inserts_since_build: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.flat.len()
    }

    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the new id and whether the insert triggered an IVF rebuild.
    fn add(&mut self, v: &[f32], payload: String) -> Result<(VecId, bool), VectorStoreError> {
        if v.len() != self.dim {
            return Err(VectorStoreError::DimensionMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        let id = self.flat.add(v);
        self.payloads.push(payload);
        self.inserts_since_build += 1;
        let rebuild = self.flat.len() >= Self::IVF_THRESHOLD
            && self.inserts_since_build >= Self::REBUILD_SLACK;
        if rebuild {
            self.rebuild_ivf();
        }
        Ok((id, rebuild))
    }

    fn rebuild_ivf(&mut self) {
        let items: Vec<(VecId, Vec<f32>)> = (0..self.flat.len() as VecId)
            .map(|id| (id, self.flat.get(id).expect("sequential ids").to_vec()))
            .collect();
        let nlist = (items.len() as f64).sqrt().ceil() as usize;
        let cfg = IvfConfig {
            nlist,
            nprobe: (nlist / 4).max(4),
            ..Default::default()
        };
        self.ivf = Some(IvfIndex::build(self.dim, self.metric, cfg, &items));
        self.inserts_since_build = 0;
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<SearchHit>, VectorStoreError> {
        if query.len() != self.dim {
            return Err(VectorStoreError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        // The IVF index may be stale by up to REBUILD_SLACK inserts; exact
        // scan remains authoritative until the collection is large enough
        // that the approximation matters.
        let scored = match (&self.ivf, self.flat.len() >= Self::IVF_THRESHOLD) {
            (Some(ivf), true) if self.inserts_since_build == 0 => ivf.search(query, k),
            _ => self.flat.search(query, k),
        };
        Ok(scored
            .into_iter()
            .map(|s| SearchHit {
                id: s.id,
                score: s.score,
                payload: self.payloads[s.id as usize].clone(),
            })
            .collect())
    }
}

/// Serializable snapshot of one collection (vectors + payloads). The IVF
/// index is not persisted — it is derived state, rebuilt on demand after
/// restore.
#[derive(Serialize, Deserialize)]
struct CollectionSnapshot {
    dim: usize,
    metric: Metric,
    vectors: Vec<Vec<f32>>,
    payloads: Vec<String>,
}

/// Serializable snapshot of a whole store.
#[derive(Serialize, Deserialize)]
struct StoreSnapshot {
    collections: BTreeMap<String, CollectionSnapshot>,
}

/// Thread-safe store of named collections. Clones share state.
#[derive(Clone, Default)]
pub struct VectorStore {
    collections: Arc<RwLock<BTreeMap<String, Arc<RwLock<Collection>>>>>,
    tracer: Option<pz_obs::Tracer>,
}

impl VectorStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `vector.*` counters (inserts, probes, index builds) on
    /// `tracer`. Clones made after this call share the tracer.
    pub fn with_tracer(mut self, tracer: pz_obs::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Create a collection. Errors if the name is taken.
    pub fn create_collection(
        &self,
        name: &str,
        dim: usize,
        metric: Metric,
    ) -> Result<(), VectorStoreError> {
        let mut map = self.collections.write();
        if map.contains_key(name) {
            return Err(VectorStoreError::CollectionExists(name.to_string()));
        }
        map.insert(
            name.to_string(),
            Arc::new(RwLock::new(Collection::new(dim, metric))),
        );
        Ok(())
    }

    /// Create the collection if missing; no-op if present.
    pub fn ensure_collection(&self, name: &str, dim: usize, metric: Metric) {
        let _ = self.create_collection(name, dim, metric);
    }

    fn get_collection(&self, name: &str) -> Result<Arc<RwLock<Collection>>, VectorStoreError> {
        self.collections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| VectorStoreError::CollectionNotFound(name.to_string()))
    }

    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    pub fn collection_len(&self, name: &str) -> Result<usize, VectorStoreError> {
        let coll = self.get_collection(name)?;
        let len = coll.read().len();
        Ok(len)
    }

    /// Insert a vector with an opaque payload, returning the assigned id.
    pub fn add(
        &self,
        collection: &str,
        vector: &[f32],
        payload: impl Into<String>,
    ) -> Result<VecId, VectorStoreError> {
        let coll = self.get_collection(collection)?;
        let (id, rebuilt) = coll.write().add(vector, payload.into())?;
        if let Some(t) = &self.tracer {
            t.incr("vector.inserts", 1);
            if rebuilt {
                t.incr("vector.index_builds", 1);
                t.event(
                    pz_obs::Layer::Vector,
                    "ivf_build",
                    &[
                        ("collection", collection.to_string()),
                        ("len", coll.read().len().to_string()),
                    ],
                );
            }
        }
        Ok(id)
    }

    /// Top-k search in a collection.
    pub fn search(
        &self,
        collection: &str,
        query: &[f32],
        k: usize,
    ) -> Result<Vec<SearchHit>, VectorStoreError> {
        let coll = self.get_collection(collection)?;
        let hits = coll.read().search(query, k)?;
        if let Some(t) = &self.tracer {
            t.incr("vector.probes", 1);
        }
        Ok(hits)
    }

    /// Drop a collection; `Ok` even if it did not exist.
    pub fn drop_collection(&self, name: &str) {
        self.collections.write().remove(name);
    }

    /// Serialize the whole store (vectors + payloads; indexes are derived
    /// state and are rebuilt after restore).
    pub fn to_json(&self) -> Result<String, VectorStoreError> {
        let mut snap = StoreSnapshot {
            collections: BTreeMap::new(),
        };
        for (name, coll) in self.collections.read().iter() {
            let c = coll.read();
            let vectors: Vec<Vec<f32>> = (0..c.flat.len() as VecId)
                .map(|id| c.flat.get(id).expect("sequential ids").to_vec())
                .collect();
            snap.collections.insert(
                name.clone(),
                CollectionSnapshot {
                    dim: c.dim,
                    metric: c.metric,
                    vectors,
                    payloads: c.payloads.clone(),
                },
            );
        }
        serde_json::to_string(&snap).map_err(|e| VectorStoreError::Snapshot(e.to_string()))
    }

    /// Restore a store from [`Self::to_json`] output. Returns a fresh
    /// store; collection contents (ids, payloads, search results) match the
    /// snapshotted store exactly.
    pub fn from_json(json: &str) -> Result<Self, VectorStoreError> {
        let snap: StoreSnapshot =
            serde_json::from_str(json).map_err(|e| VectorStoreError::Snapshot(e.to_string()))?;
        let store = Self::new();
        for (name, c) in snap.collections {
            if c.vectors.len() != c.payloads.len() {
                return Err(VectorStoreError::Snapshot(format!(
                    "collection {name:?}: {} vectors vs {} payloads",
                    c.vectors.len(),
                    c.payloads.len()
                )));
            }
            store.create_collection(&name, c.dim, c.metric)?;
            for (v, payload) in c.vectors.iter().zip(c.payloads) {
                store.add(&name, v, payload)?;
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_add_search() {
        let store = VectorStore::new();
        store.create_collection("docs", 2, Metric::Cosine).unwrap();
        store.add("docs", &[1.0, 0.0], "alpha").unwrap();
        store.add("docs", &[0.0, 1.0], "beta").unwrap();
        let hits = store.search("docs", &[1.0, 0.1], 1).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload, "alpha");
    }

    #[test]
    fn duplicate_collection_rejected() {
        let store = VectorStore::new();
        store.create_collection("c", 2, Metric::Dot).unwrap();
        assert_eq!(
            store.create_collection("c", 2, Metric::Dot),
            Err(VectorStoreError::CollectionExists("c".into()))
        );
        // ensure_collection tolerates it.
        store.ensure_collection("c", 2, Metric::Dot);
    }

    #[test]
    fn missing_collection_errors() {
        let store = VectorStore::new();
        assert!(matches!(
            store.search("nope", &[1.0], 1),
            Err(VectorStoreError::CollectionNotFound(_))
        ));
        assert!(matches!(
            store.add("nope", &[1.0], "x"),
            Err(VectorStoreError::CollectionNotFound(_))
        ));
    }

    #[test]
    fn dimension_checked() {
        let store = VectorStore::new();
        store.create_collection("c", 3, Metric::Cosine).unwrap();
        assert_eq!(
            store.add("c", &[1.0], "x"),
            Err(VectorStoreError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        );
        store.add("c", &[1.0, 2.0, 3.0], "x").unwrap();
        assert_eq!(
            store.search("c", &[1.0], 1),
            Err(VectorStoreError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn drop_collection() {
        let store = VectorStore::new();
        store.create_collection("c", 2, Metric::Cosine).unwrap();
        store.drop_collection("c");
        assert!(store.collection_names().is_empty());
        store.drop_collection("never-existed");
    }

    #[test]
    fn large_collection_switches_to_ivf_and_stays_searchable() {
        let store = VectorStore::new();
        store
            .create_collection("big", 4, Metric::Euclidean)
            .unwrap();
        // Push past the IVF threshold plus the rebuild slack.
        for i in 0..(Collection::IVF_THRESHOLD + 300) {
            let f = i as f32;
            store
                .add(
                    "big",
                    &[f.sin(), f.cos(), (f * 0.1).sin(), (f * 0.1).cos()],
                    format!("p{i}"),
                )
                .unwrap();
        }
        let n = store.collection_len("big").unwrap();
        assert_eq!(n, Collection::IVF_THRESHOLD + 300);
        let hits = store.search("big", &[0.0, 1.0, 0.0, 1.0], 5).unwrap();
        assert_eq!(hits.len(), 5);
        // Best hit should be very close to the query.
        assert!(hits[0].score > -0.5, "score {}", hits[0].score);
    }

    #[test]
    fn payloads_follow_ids() {
        let store = VectorStore::new();
        store.create_collection("c", 1, Metric::Dot).unwrap();
        for i in 0..10 {
            store.add("c", &[i as f32], format!("payload-{i}")).unwrap();
        }
        let hits = store.search("c", &[100.0], 3).unwrap();
        assert_eq!(hits[0].payload, "payload-9");
        assert_eq!(hits[1].payload, "payload-8");
    }

    #[test]
    fn snapshot_round_trips() {
        let store = VectorStore::new();
        store.create_collection("docs", 3, Metric::Cosine).unwrap();
        for i in 0..20 {
            let f = i as f32;
            store
                .add("docs", &[f.sin(), f.cos(), f * 0.1], format!("p{i}"))
                .unwrap();
        }
        store
            .create_collection("other", 2, Metric::Euclidean)
            .unwrap();
        store.add("other", &[1.0, 2.0], "x").unwrap();

        let json = store.to_json().unwrap();
        let restored = VectorStore::from_json(&json).unwrap();
        assert_eq!(restored.collection_names(), store.collection_names());
        assert_eq!(restored.collection_len("docs").unwrap(), 20);
        // Search results identical.
        let q = [0.3f32, 0.9, 0.5];
        let a = store.search("docs", &q, 5).unwrap();
        let b = restored.search("docs", &q, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        assert!(matches!(
            VectorStore::from_json("not json"),
            Err(VectorStoreError::Snapshot(_))
        ));
        let bad = r#"{"collections":{"c":{"dim":2,"metric":"Cosine","vectors":[[1.0,2.0]],"payloads":[]}}}"#;
        assert!(matches!(
            VectorStore::from_json(bad),
            Err(VectorStoreError::Snapshot(_))
        ));
    }

    #[test]
    fn tracer_counts_inserts_probes_and_builds() {
        let tracer = pz_obs::Tracer::new(Arc::new(pz_obs::FrozenClock(0)));
        let store = VectorStore::new().with_tracer(tracer.clone());
        store.create_collection("c", 2, Metric::Cosine).unwrap();
        for i in 0..(Collection::IVF_THRESHOLD + 300) {
            store.add("c", &[i as f32, 1.0], format!("p{i}")).unwrap();
        }
        store.search("c", &[1.0, 1.0], 3).unwrap();
        store.search("c", &[2.0, 1.0], 3).unwrap();
        let snap = tracer.snapshot();
        assert_eq!(
            snap.counters["vector.inserts"],
            (Collection::IVF_THRESHOLD + 300) as u64
        );
        assert_eq!(snap.counters["vector.probes"], 2);
        assert!(snap.counters["vector.index_builds"] >= 1);
        assert!(snap.events.iter().any(|e| e.name == "ivf_build"));
    }

    #[test]
    fn concurrent_adds() {
        let store = VectorStore::new();
        store.create_collection("c", 2, Metric::Cosine).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        store
                            .add("c", &[t as f32, i as f32], format!("{t}-{i}"))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(store.collection_len("c").unwrap(), 400);
    }
}
