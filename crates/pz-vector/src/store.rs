//! Collection-oriented store facade.
//!
//! What the `Retrieve` operator actually talks to: named collections of
//! `(vector, payload)` pairs with metric-aware top-k search. Routing is a
//! three-rung ladder keyed on collection size: small collections are
//! scanned exactly; past [`Collection::IVF_THRESHOLD`] the store builds an
//! IVF index and routes queries through it (rebuilding lazily after enough
//! inserts, with the exact scan authoritative during the unindexed
//! window); past [`Collection::HNSW_THRESHOLD`] it switches to an
//! incremental HNSW graph — indexed on every insert, no stale window —
//! so top-k stays sub-linear at a million vectors.

use crate::flat::FlatIndex;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::ivf::{IvfConfig, IvfIndex};
use crate::metric::Metric;
use crate::VecId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use thiserror::Error;

/// Store-level errors.
#[derive(Clone, Debug, Error, PartialEq, Eq)]
pub enum VectorStoreError {
    #[error("collection not found: {0}")]
    CollectionNotFound(String),
    #[error("collection already exists: {0}")]
    CollectionExists(String),
    #[error("dimension mismatch: expected {expected}, got {got}")]
    DimensionMismatch { expected: usize, got: usize },
    #[error("snapshot error: {0}")]
    Snapshot(String),
}

/// A search result: the payload attached at insert time plus the score.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchHit {
    pub id: VecId,
    pub score: f32,
    pub payload: String,
}

/// Which index tier an insert caused to be (re)built, for tracing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum IndexBuild {
    Ivf,
    Hnsw,
}

/// One named collection.
pub struct Collection {
    dim: usize,
    metric: Metric,
    flat: FlatIndex,
    payloads: Vec<String>,
    ivf: Option<IvfIndex>,
    hnsw: Option<HnswIndex>,
    inserts_since_build: usize,
}

impl Collection {
    /// Below this size, exact scan; above, IVF.
    pub const IVF_THRESHOLD: usize = 1024;
    /// Past this size, the incremental HNSW graph takes over from IVF:
    /// batch IVF rebuilds are O(n·√n) each and the rebuild cadence makes
    /// growth quadratic-ish, while HNSW amortizes indexing into every
    /// insert and keeps queries ~logarithmic.
    pub const HNSW_THRESHOLD: usize = 8192;
    /// Rebuild the IVF index after this many unindexed inserts.
    const REBUILD_SLACK: usize = 256;

    fn new(dim: usize, metric: Metric) -> Self {
        Self {
            dim,
            metric,
            flat: FlatIndex::new(dim, metric),
            payloads: Vec::new(),
            ivf: None,
            hnsw: None,
            inserts_since_build: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.flat.len()
    }

    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the new id and whether the insert triggered an index build.
    fn add(
        &mut self,
        v: &[f32],
        payload: String,
    ) -> Result<(VecId, Option<IndexBuild>), VectorStoreError> {
        if v.len() != self.dim {
            return Err(VectorStoreError::DimensionMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        let id = self.flat.add(v);
        self.payloads.push(payload);
        if let Some(hnsw) = &mut self.hnsw {
            // HNSW is incremental: the insert is indexed before we return,
            // so there is never an unindexed window on this tier.
            hnsw.add(v);
            return Ok((id, None));
        }
        self.inserts_since_build += 1;
        if self.flat.len() >= Self::HNSW_THRESHOLD {
            self.build_hnsw();
            return Ok((id, Some(IndexBuild::Hnsw)));
        }
        let rebuild = self.flat.len() >= Self::IVF_THRESHOLD
            && self.inserts_since_build >= Self::REBUILD_SLACK;
        if rebuild {
            self.rebuild_ivf();
        }
        Ok((id, rebuild.then_some(IndexBuild::Ivf)))
    }

    fn rebuild_ivf(&mut self) {
        let items: Vec<(VecId, Vec<f32>)> = (0..self.flat.len() as VecId)
            .map(|id| (id, self.flat.get(id).expect("sequential ids").to_vec()))
            .collect();
        let nlist = (items.len() as f64).sqrt().ceil() as usize;
        let cfg = IvfConfig {
            nlist,
            nprobe: (nlist / 4).max(4),
            ..Default::default()
        };
        self.ivf = Some(IvfIndex::build(self.dim, self.metric, cfg, &items));
        self.inserts_since_build = 0;
    }

    /// One-time promotion to the HNSW tier: index everything stored so
    /// far; subsequent inserts go straight into the graph. The IVF index
    /// is dropped — it would only go stale.
    fn build_hnsw(&mut self) {
        let mut hnsw = HnswIndex::new(self.dim, self.metric, HnswConfig::default());
        for id in 0..self.flat.len() as VecId {
            hnsw.add(self.flat.get(id).expect("sequential ids"));
        }
        self.hnsw = Some(hnsw);
        self.ivf = None;
        self.inserts_since_build = 0;
    }

    fn scored(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<Vec<crate::flat::Scored>, VectorStoreError> {
        if query.len() != self.dim {
            return Err(VectorStoreError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if let Some(hnsw) = &self.hnsw {
            return Ok(hnsw.search(query, k));
        }
        // The IVF index may be stale by up to REBUILD_SLACK inserts; exact
        // scan remains authoritative until the collection is large enough
        // that the approximation matters.
        Ok(match (&self.ivf, self.flat.len() >= Self::IVF_THRESHOLD) {
            (Some(ivf), true) if self.inserts_since_build == 0 => ivf.search(query, k),
            _ => self.flat.search(query, k),
        })
    }

    fn search(&self, query: &[f32], k: usize) -> Result<Vec<SearchHit>, VectorStoreError> {
        Ok(self
            .scored(query, k)?
            .into_iter()
            .map(|s| SearchHit {
                id: s.id,
                score: s.score,
                payload: self.payloads[s.id as usize].clone(),
            })
            .collect())
    }
}

/// Serializable snapshot of one collection (vectors + payloads). The IVF
/// index is not persisted — it is derived state, rebuilt on demand after
/// restore.
#[derive(Serialize, Deserialize)]
struct CollectionSnapshot {
    dim: usize,
    metric: Metric,
    vectors: Vec<Vec<f32>>,
    payloads: Vec<String>,
}

/// Serializable snapshot of a whole store.
#[derive(Serialize, Deserialize)]
struct StoreSnapshot {
    collections: BTreeMap<String, CollectionSnapshot>,
}

/// Thread-safe store of named collections. Clones share state.
#[derive(Clone, Default)]
pub struct VectorStore {
    collections: Arc<RwLock<BTreeMap<String, Arc<RwLock<Collection>>>>>,
    tracer: Option<pz_obs::Tracer>,
}

impl VectorStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `vector.*` counters (inserts, probes, index builds) on
    /// `tracer`. Clones made after this call share the tracer.
    pub fn with_tracer(mut self, tracer: pz_obs::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Create a collection. Errors if the name is taken.
    pub fn create_collection(
        &self,
        name: &str,
        dim: usize,
        metric: Metric,
    ) -> Result<(), VectorStoreError> {
        let mut map = self.collections.write();
        if map.contains_key(name) {
            return Err(VectorStoreError::CollectionExists(name.to_string()));
        }
        map.insert(
            name.to_string(),
            Arc::new(RwLock::new(Collection::new(dim, metric))),
        );
        Ok(())
    }

    /// Create the collection if missing; no-op if present.
    pub fn ensure_collection(&self, name: &str, dim: usize, metric: Metric) {
        let _ = self.create_collection(name, dim, metric);
    }

    fn get_collection(&self, name: &str) -> Result<Arc<RwLock<Collection>>, VectorStoreError> {
        self.collections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| VectorStoreError::CollectionNotFound(name.to_string()))
    }

    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    pub fn collection_len(&self, name: &str) -> Result<usize, VectorStoreError> {
        let coll = self.get_collection(name)?;
        let len = coll.read().len();
        Ok(len)
    }

    /// Insert a vector with an opaque payload, returning the assigned id.
    pub fn add(
        &self,
        collection: &str,
        vector: &[f32],
        payload: impl Into<String>,
    ) -> Result<VecId, VectorStoreError> {
        let coll = self.get_collection(collection)?;
        let (id, built) = coll.write().add(vector, payload.into())?;
        if let Some(t) = &self.tracer {
            t.incr("vector.inserts", 1);
            if let Some(tier) = built {
                t.incr("vector.index_builds", 1);
                t.event(
                    pz_obs::Layer::Vector,
                    match tier {
                        IndexBuild::Ivf => "ivf_build",
                        IndexBuild::Hnsw => "hnsw_build",
                    },
                    &[
                        ("collection", collection.to_string()),
                        ("len", coll.read().len().to_string()),
                    ],
                );
            }
        }
        Ok(id)
    }

    /// Top-k search in a collection.
    pub fn search(
        &self,
        collection: &str,
        query: &[f32],
        k: usize,
    ) -> Result<Vec<SearchHit>, VectorStoreError> {
        let coll = self.get_collection(collection)?;
        let hits = coll.read().search(query, k)?;
        if let Some(t) = &self.tracer {
            t.incr("vector.probes", 1);
        }
        Ok(hits)
    }

    /// Batched top-k: one lock acquisition for the whole query set,
    /// results in query order. The hot path for embedding filters, which
    /// score every record against the same collection.
    pub fn search_batch(
        &self,
        collection: &str,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<SearchHit>>, VectorStoreError> {
        let coll = self.get_collection(collection)?;
        let guard = coll.read();
        let out = queries
            .iter()
            .map(|q| guard.search(q, k))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(t) = &self.tracer {
            t.incr("vector.probes", queries.len() as u64);
        }
        Ok(out)
    }

    /// Drop a collection; `Ok` even if it did not exist.
    pub fn drop_collection(&self, name: &str) {
        self.collections.write().remove(name);
    }

    /// Serialize the whole store (vectors + payloads; indexes are derived
    /// state and are rebuilt after restore).
    pub fn to_json(&self) -> Result<String, VectorStoreError> {
        let mut snap = StoreSnapshot {
            collections: BTreeMap::new(),
        };
        for (name, coll) in self.collections.read().iter() {
            let c = coll.read();
            let vectors: Vec<Vec<f32>> = (0..c.flat.len() as VecId)
                .map(|id| c.flat.get(id).expect("sequential ids").to_vec())
                .collect();
            snap.collections.insert(
                name.clone(),
                CollectionSnapshot {
                    dim: c.dim,
                    metric: c.metric,
                    vectors,
                    payloads: c.payloads.clone(),
                },
            );
        }
        serde_json::to_string(&snap).map_err(|e| VectorStoreError::Snapshot(e.to_string()))
    }

    /// Restore a store from [`Self::to_json`] output. Returns a fresh
    /// store; collection contents (ids, payloads, search results) match the
    /// snapshotted store exactly.
    pub fn from_json(json: &str) -> Result<Self, VectorStoreError> {
        let snap: StoreSnapshot =
            serde_json::from_str(json).map_err(|e| VectorStoreError::Snapshot(e.to_string()))?;
        let store = Self::new();
        for (name, c) in snap.collections {
            if c.vectors.len() != c.payloads.len() {
                return Err(VectorStoreError::Snapshot(format!(
                    "collection {name:?}: {} vectors vs {} payloads",
                    c.vectors.len(),
                    c.payloads.len()
                )));
            }
            store.create_collection(&name, c.dim, c.metric)?;
            for (v, payload) in c.vectors.iter().zip(c.payloads) {
                store.add(&name, v, payload)?;
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_add_search() {
        let store = VectorStore::new();
        store.create_collection("docs", 2, Metric::Cosine).unwrap();
        store.add("docs", &[1.0, 0.0], "alpha").unwrap();
        store.add("docs", &[0.0, 1.0], "beta").unwrap();
        let hits = store.search("docs", &[1.0, 0.1], 1).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload, "alpha");
    }

    #[test]
    fn duplicate_collection_rejected() {
        let store = VectorStore::new();
        store.create_collection("c", 2, Metric::Dot).unwrap();
        assert_eq!(
            store.create_collection("c", 2, Metric::Dot),
            Err(VectorStoreError::CollectionExists("c".into()))
        );
        // ensure_collection tolerates it.
        store.ensure_collection("c", 2, Metric::Dot);
    }

    #[test]
    fn missing_collection_errors() {
        let store = VectorStore::new();
        assert!(matches!(
            store.search("nope", &[1.0], 1),
            Err(VectorStoreError::CollectionNotFound(_))
        ));
        assert!(matches!(
            store.add("nope", &[1.0], "x"),
            Err(VectorStoreError::CollectionNotFound(_))
        ));
    }

    #[test]
    fn dimension_checked() {
        let store = VectorStore::new();
        store.create_collection("c", 3, Metric::Cosine).unwrap();
        assert_eq!(
            store.add("c", &[1.0], "x"),
            Err(VectorStoreError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        );
        store.add("c", &[1.0, 2.0, 3.0], "x").unwrap();
        assert_eq!(
            store.search("c", &[1.0], 1),
            Err(VectorStoreError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn drop_collection() {
        let store = VectorStore::new();
        store.create_collection("c", 2, Metric::Cosine).unwrap();
        store.drop_collection("c");
        assert!(store.collection_names().is_empty());
        store.drop_collection("never-existed");
    }

    #[test]
    fn large_collection_switches_to_ivf_and_stays_searchable() {
        let store = VectorStore::new();
        store
            .create_collection("big", 4, Metric::Euclidean)
            .unwrap();
        // Push past the IVF threshold plus the rebuild slack.
        for i in 0..(Collection::IVF_THRESHOLD + 300) {
            let f = i as f32;
            store
                .add(
                    "big",
                    &[f.sin(), f.cos(), (f * 0.1).sin(), (f * 0.1).cos()],
                    format!("p{i}"),
                )
                .unwrap();
        }
        let n = store.collection_len("big").unwrap();
        assert_eq!(n, Collection::IVF_THRESHOLD + 300);
        let hits = store.search("big", &[0.0, 1.0, 0.0, 1.0], 5).unwrap();
        assert_eq!(hits.len(), 5);
        // Best hit should be very close to the query.
        assert!(hits[0].score > -0.5, "score {}", hits[0].score);
    }

    #[test]
    fn payloads_follow_ids() {
        let store = VectorStore::new();
        store.create_collection("c", 1, Metric::Dot).unwrap();
        for i in 0..10 {
            store.add("c", &[i as f32], format!("payload-{i}")).unwrap();
        }
        let hits = store.search("c", &[100.0], 3).unwrap();
        assert_eq!(hits[0].payload, "payload-9");
        assert_eq!(hits[1].payload, "payload-8");
    }

    #[test]
    fn snapshot_round_trips() {
        let store = VectorStore::new();
        store.create_collection("docs", 3, Metric::Cosine).unwrap();
        for i in 0..20 {
            let f = i as f32;
            store
                .add("docs", &[f.sin(), f.cos(), f * 0.1], format!("p{i}"))
                .unwrap();
        }
        store
            .create_collection("other", 2, Metric::Euclidean)
            .unwrap();
        store.add("other", &[1.0, 2.0], "x").unwrap();

        let json = store.to_json().unwrap();
        let restored = VectorStore::from_json(&json).unwrap();
        assert_eq!(restored.collection_names(), store.collection_names());
        assert_eq!(restored.collection_len("docs").unwrap(), 20);
        // Search results identical.
        let q = [0.3f32, 0.9, 0.5];
        let a = store.search("docs", &q, 5).unwrap();
        let b = restored.search("docs", &q, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        assert!(matches!(
            VectorStore::from_json("not json"),
            Err(VectorStoreError::Snapshot(_))
        ));
        let bad = r#"{"collections":{"c":{"dim":2,"metric":"Cosine","vectors":[[1.0,2.0]],"payloads":[]}}}"#;
        assert!(matches!(
            VectorStore::from_json(bad),
            Err(VectorStoreError::Snapshot(_))
        ));
    }

    #[test]
    fn tracer_counts_inserts_probes_and_builds() {
        let tracer = pz_obs::Tracer::new(Arc::new(pz_obs::FrozenClock(0)));
        let store = VectorStore::new().with_tracer(tracer.clone());
        store.create_collection("c", 2, Metric::Cosine).unwrap();
        for i in 0..(Collection::IVF_THRESHOLD + 300) {
            store.add("c", &[i as f32, 1.0], format!("p{i}")).unwrap();
        }
        store.search("c", &[1.0, 1.0], 3).unwrap();
        store.search("c", &[2.0, 1.0], 3).unwrap();
        let snap = tracer.snapshot();
        assert_eq!(
            snap.counters["vector.inserts"],
            (Collection::IVF_THRESHOLD + 300) as u64
        );
        assert_eq!(snap.counters["vector.probes"], 2);
        assert!(snap.counters["vector.index_builds"] >= 1);
        assert!(snap.events.iter().any(|e| e.name == "ivf_build"));
    }

    /// Regression pin for the IVF rebuild-after-inserts audit: between an
    /// IVF build and the next REBUILD_SLACK-triggered rebuild, inserts are
    /// absent from the IVF index. The router must treat the exact scan as
    /// authoritative during that window — a stale-index read would make a
    /// just-inserted vector unfindable until up to 256 inserts later.
    #[test]
    fn ivf_unindexed_window_finds_fresh_inserts() {
        let store = VectorStore::new();
        store.create_collection("c", 4, Metric::Euclidean).unwrap();
        // Fill to exactly one IVF build (len = threshold + slack).
        for i in 0..(Collection::IVF_THRESHOLD + 300) {
            let f = i as f32 * 0.01;
            store
                .add("c", &[f.sin(), f.cos(), f, 1.0], format!("p{i}"))
                .unwrap();
        }
        {
            let coll = store.get_collection("c").unwrap();
            let c = coll.read();
            assert!(c.ivf.is_some(), "IVF must have been built");
            assert!(
                c.inserts_since_build > 0,
                "test needs a non-empty unindexed window"
            );
        }
        // Insert an outlier the stale IVF index has never seen.
        store
            .add("c", &[900.0, 900.0, 900.0, 900.0], "fresh")
            .unwrap();
        let hits = store.search("c", &[900.0, 900.0, 900.0, 900.0], 1).unwrap();
        assert_eq!(
            hits[0].payload, "fresh",
            "fresh insert must be findable during the unindexed window"
        );
    }

    /// Companion pin: with zero unindexed inserts the router *does* serve
    /// from IVF (so the window check can't silently pin us to flat scans
    /// forever).
    #[test]
    fn ivf_serves_queries_when_index_is_fresh() {
        let store = VectorStore::new();
        store.create_collection("c", 4, Metric::Euclidean).unwrap();
        let n = Collection::IVF_THRESHOLD + 256; // lands exactly on a rebuild
        for i in 0..n {
            let f = i as f32 * 0.01;
            store
                .add("c", &[f.sin(), f.cos(), f, 1.0], format!("p{i}"))
                .unwrap();
        }
        let coll = store.get_collection("c").unwrap();
        let c = coll.read();
        assert!(c.ivf.is_some());
        assert_eq!(c.inserts_since_build, 0, "index should be fresh");
        assert!(!c.search(&[0.5, 0.5, 2.0, 1.0], 5).unwrap().is_empty());
    }

    #[test]
    fn hnsw_promotion_at_threshold() {
        let store = VectorStore::new();
        let tracer = pz_obs::Tracer::new(Arc::new(pz_obs::FrozenClock(0)));
        let store = store.with_tracer(tracer.clone());
        // Pre-fill storage to one short of the threshold directly (the
        // IVF-era rebuild cadence is covered by the tests above; paying
        // ~30 debug-mode k-means builds here would add nothing).
        let mut pre = Collection::new(2, Metric::Euclidean);
        for i in 0..(Collection::HNSW_THRESHOLD - 1) {
            let f = i as f32;
            pre.flat.add(&[f.sin() * 10.0, f.cos() * 10.0]);
            pre.payloads.push(format!("p{i}"));
        }
        store
            .collections
            .write()
            .insert("big".to_string(), Arc::new(RwLock::new(pre)));
        // These go through the real add() path: the first crosses the
        // threshold and promotes, the rest insert incrementally.
        for i in (Collection::HNSW_THRESHOLD - 1)..(Collection::HNSW_THRESHOLD + 50) {
            let f = i as f32;
            store
                .add("big", &[f.sin() * 10.0, f.cos() * 10.0], format!("p{i}"))
                .unwrap();
        }
        {
            let coll = store.get_collection("big").unwrap();
            let c = coll.read();
            assert!(c.hnsw.is_some(), "collection must promote to HNSW");
            assert!(c.ivf.is_none(), "IVF is dropped after promotion");
            assert_eq!(
                c.hnsw.as_ref().unwrap().len(),
                c.len(),
                "post-promotion inserts must be indexed incrementally"
            );
        }
        // Fresh inserts are immediately searchable on the HNSW tier.
        store.add("big", &[500.0, 500.0], "fresh").unwrap();
        let hits = store.search("big", &[500.0, 500.0], 1).unwrap();
        assert_eq!(hits[0].payload, "fresh");
        let snap = tracer.snapshot();
        assert!(snap.events.iter().any(|e| e.name == "hnsw_build"));
    }

    #[test]
    fn search_batch_matches_single_queries() {
        let store = VectorStore::new();
        store.create_collection("c", 2, Metric::Cosine).unwrap();
        for i in 0..50 {
            let f = i as f32 * 0.3;
            store
                .add("c", &[f.sin(), f.cos()], format!("p{i}"))
                .unwrap();
        }
        let queries: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32, 1.0]).collect();
        let batched = store.search_batch("c", &queries, 3).unwrap();
        assert_eq!(batched.len(), 5);
        for (q, hits) in queries.iter().zip(&batched) {
            assert_eq!(hits, &store.search("c", q, 3).unwrap());
        }
        assert!(matches!(
            store.search_batch("nope", &queries, 3),
            Err(VectorStoreError::CollectionNotFound(_))
        ));
    }

    #[test]
    fn concurrent_adds() {
        let store = VectorStore::new();
        store.create_collection("c", 2, Metric::Cosine).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        store
                            .add("c", &[t as f32, i as f32], format!("{t}-{i}"))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(store.collection_len("c").unwrap(), 400);
    }
}
