//! Similarity metrics.
//!
//! All indexes score candidates with a [`Metric`]. Scores are oriented so
//! that **greater is better** for every metric (Euclidean distance is
//! negated), which lets the top-k machinery be metric-agnostic.

use serde::{Deserialize, Serialize};

/// Supported similarity metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Cosine similarity in [-1, 1]; zero vectors score 0.
    #[default]
    Cosine,
    /// Raw inner product.
    Dot,
    /// Negated Euclidean distance (so that greater is better).
    Euclidean,
}

impl Metric {
    /// Score `a` against `b`. Panics in debug builds on length mismatch.
    #[inline]
    pub fn score(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        match self {
            Metric::Cosine => {
                let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na.sqrt() * nb.sqrt())
                }
            }
            Metric::Dot => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Metric::Euclidean => -a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_parallel_is_one() {
        let m = Metric::Cosine;
        assert!((m.score(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(Metric::Cosine.score(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_scores_zero() {
        assert_eq!(Metric::Cosine.score(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Metric::Dot.score(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn euclidean_is_negated_distance() {
        let s = Metric::Euclidean.score(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((s + 5.0).abs() < 1e-6);
    }

    #[test]
    fn euclidean_self_is_best() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(Metric::Euclidean.score(&v, &v), 0.0);
        assert!(Metric::Euclidean.score(&v, &[1.1, 2.0, 3.0]) < 0.0);
    }

    #[test]
    fn greater_is_better_for_all_metrics() {
        // Same near/far pair must order identically under every metric.
        let q = [1.0f32, 0.0, 0.0];
        let near = [0.9f32, 0.1, 0.0];
        let far = [-1.0f32, 0.2, 0.3];
        for m in [Metric::Cosine, Metric::Dot, Metric::Euclidean] {
            assert!(m.score(&q, &near) > m.score(&q, &far), "{m:?}");
        }
    }
}
