//! IVF (inverted-file) approximate index.
//!
//! Classic two-level design: k-means clusters the corpus into `nlist`
//! partitions; a query probes only the `nprobe` partitions whose centroids
//! score best, trading recall for a ~`nlist/nprobe` scan reduction. The
//! k-means is deterministic given the seed (kmeans++-style seeding driven by
//! a splitmix64 PRNG, fixed iteration count), so builds reproduce exactly.

use crate::flat::{top_k, Scored};
use crate::metric::Metric;
use crate::VecId;

/// IVF build parameters.
#[derive(Clone, Copy, Debug)]
pub struct IvfConfig {
    /// Number of partitions (clamped to the corpus size at build).
    pub nlist: usize,
    /// Partitions probed per query (clamped to `nlist`).
    pub nprobe: usize,
    /// k-means iterations.
    pub iterations: usize,
    /// PRNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            iterations: 10,
            seed: 7,
        }
    }
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Built IVF index. Construction is batch-only (build once over a corpus);
/// the store layer rebuilds when a collection grows past a threshold.
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    nprobe: usize,
    centroids: Vec<Vec<f32>>,
    /// Per-centroid postings: (id, vector) pairs.
    lists: Vec<Vec<(VecId, Vec<f32>)>>,
    len: usize,
}

impl IvfIndex {
    /// Build an index over `(id, vector)` pairs.
    ///
    /// # Panics
    /// Panics if any vector's length differs from `dim`.
    pub fn build(
        dim: usize,
        metric: Metric,
        config: IvfConfig,
        items: &[(VecId, Vec<f32>)],
    ) -> Self {
        assert!(dim > 0, "dimension must be positive");
        for (_, v) in items {
            assert_eq!(v.len(), dim, "dimension mismatch");
        }
        let nlist = config.nlist.clamp(1, items.len().max(1));
        let centroids = kmeans(dim, config, nlist, items);
        let mut lists: Vec<Vec<(VecId, Vec<f32>)>> = vec![Vec::new(); centroids.len()];
        for (id, v) in items {
            let c = nearest_centroid(&centroids, v, metric);
            lists[c].push((*id, v.clone()));
        }
        Self {
            dim,
            metric,
            nprobe: config.nprobe.clamp(1, centroids.len().max(1)),
            centroids,
            lists,
            len: items.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Approximate top-k: scan only the `nprobe` best partitions.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Scored> {
        self.search_with_nprobe(query, k, self.nprobe)
    }

    /// Approximate top-k with an explicit probe count (for recall sweeps).
    pub fn search_with_nprobe(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<Scored> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if self.len == 0 || k == 0 {
            return Vec::new();
        }
        let probes = top_k(
            self.centroids.iter().enumerate().map(|(i, c)| Scored {
                id: i as VecId,
                score: self.metric.score(query, c),
            }),
            nprobe.clamp(1, self.centroids.len()),
        );
        let metric = self.metric;
        top_k(
            probes.iter().flat_map(|p| {
                self.lists[p.id as usize].iter().map(move |(id, v)| Scored {
                    id: *id,
                    score: metric.score(query, v),
                })
            }),
            k,
        )
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32], metric: Metric) -> usize {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = metric.score(v, c);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

/// Deterministic k-means with greedy farthest-point seeding.
/// Assignment uses Euclidean distance regardless of query metric: centroids
/// are means, which is only meaningful in L2 space.
fn kmeans(
    dim: usize,
    config: IvfConfig,
    nlist: usize,
    items: &[(VecId, Vec<f32>)],
) -> Vec<Vec<f32>> {
    if items.is_empty() {
        return vec![vec![0.0; dim]];
    }
    let mut rng = SplitMix(config.seed);
    // Seeding: first centroid random, rest farthest-first.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(nlist);
    centroids.push(items[rng.below(items.len())].1.clone());
    while centroids.len() < nlist {
        let mut far_idx = 0usize;
        let mut far_d = -1.0f32;
        for (i, (_, v)) in items.items_iter() {
            let d = centroids
                .iter()
                .map(|c| l2sq(v, c))
                .fold(f32::INFINITY, f32::min);
            if d > far_d {
                far_d = d;
                far_idx = i;
            }
        }
        centroids.push(items[far_idx].1.clone());
    }
    // Lloyd iterations.
    for _ in 0..config.iterations {
        let mut sums: Vec<Vec<f64>> = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (_, v) in items {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (i, c) in centroids.iter().enumerate() {
                let d = l2sq(v, c);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            counts[best] += 1;
            for (s, x) in sums[best].iter_mut().zip(v) {
                *s += f64::from(*x);
            }
        }
        for (i, c) in centroids.iter_mut().enumerate() {
            if counts[i] > 0 {
                for (j, x) in c.iter_mut().enumerate() {
                    *x = (sums[i][j] / counts[i] as f64) as f32;
                }
            }
            // Empty clusters keep their previous centroid.
        }
    }
    centroids
}

// Tiny extension trait so the seeding loop reads naturally without clippy's
// needless_range_loop.
trait ItemsIter {
    fn items_iter(&self) -> std::iter::Enumerate<std::slice::Iter<'_, (VecId, Vec<f32>)>>;
}

impl ItemsIter for [(VecId, Vec<f32>)] {
    fn items_iter(&self) -> std::iter::Enumerate<std::slice::Iter<'_, (VecId, Vec<f32>)>> {
        self.iter().enumerate()
    }
}

#[inline]
fn l2sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_corpus(n: usize, dim: usize, seed: u64) -> Vec<(VecId, Vec<f32>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let v: Vec<f32> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
                (i as VecId, v)
            })
            .collect()
    }

    #[test]
    fn build_and_search_smoke() {
        let corpus = random_corpus(200, 8, 1);
        let idx = IvfIndex::build(8, Metric::Cosine, IvfConfig::default(), &corpus);
        assert_eq!(idx.len(), 200);
        let hits = idx.search(&corpus[0].1, 5);
        assert!(!hits.is_empty());
        // The query vector itself must be found when probing its own cell.
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn empty_corpus() {
        let idx = IvfIndex::build(4, Metric::Cosine, IvfConfig::default(), &[]);
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 4], 3).is_empty());
    }

    #[test]
    fn nlist_clamped_to_corpus() {
        let corpus = random_corpus(3, 4, 2);
        let idx = IvfIndex::build(
            4,
            Metric::Cosine,
            IvfConfig {
                nlist: 100,
                ..Default::default()
            },
            &corpus,
        );
        assert!(idx.nlist() <= 3);
    }

    #[test]
    fn deterministic_build() {
        let corpus = random_corpus(100, 8, 3);
        let a = IvfIndex::build(8, Metric::Cosine, IvfConfig::default(), &corpus);
        let b = IvfIndex::build(8, Metric::Cosine, IvfConfig::default(), &corpus);
        let q = &corpus[7].1;
        assert_eq!(
            a.search(q, 10).iter().map(|h| h.id).collect::<Vec<_>>(),
            b.search(q, 10).iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn full_probe_matches_flat_exactly() {
        let corpus = random_corpus(150, 8, 4);
        let cfg = IvfConfig {
            nlist: 10,
            nprobe: 10,
            ..Default::default()
        };
        let ivf = IvfIndex::build(8, Metric::Euclidean, cfg, &corpus);
        let mut flat = FlatIndex::new(8, Metric::Euclidean);
        for (_, v) in &corpus {
            flat.add(v);
        }
        for qi in [0usize, 33, 77] {
            let q = &corpus[qi].1;
            let ivf_ids: Vec<VecId> = ivf.search(q, 10).iter().map(|h| h.id).collect();
            let flat_ids: Vec<VecId> = flat.search(q, 10).iter().map(|h| h.id).collect();
            assert_eq!(ivf_ids, flat_ids, "query {qi}");
        }
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let corpus = random_corpus(500, 16, 5);
        let cfg = IvfConfig {
            nlist: 25,
            nprobe: 1,
            ..Default::default()
        };
        let ivf = IvfIndex::build(16, Metric::Euclidean, cfg, &corpus);
        let mut flat = FlatIndex::new(16, Metric::Euclidean);
        for (_, v) in &corpus {
            flat.add(v);
        }
        let recall_at = |nprobe: usize| -> f64 {
            let mut hit = 0usize;
            let mut total = 0usize;
            for qi in (0..500).step_by(25) {
                let q = &corpus[qi].1;
                let truth: Vec<VecId> = flat.search(q, 10).iter().map(|h| h.id).collect();
                let approx: Vec<VecId> = ivf
                    .search_with_nprobe(q, 10, nprobe)
                    .iter()
                    .map(|h| h.id)
                    .collect();
                hit += truth.iter().filter(|t| approx.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total as f64
        };
        let r1 = recall_at(1);
        let r8 = recall_at(8);
        let r25 = recall_at(25);
        assert!(r8 >= r1, "r1={r1} r8={r8}");
        assert!(
            (r25 - 1.0).abs() < 1e-9,
            "full probe must be exact, r25={r25}"
        );
    }

    #[test]
    fn clustered_data_high_recall_low_probe() {
        // Data with clear cluster structure: IVF with 1 probe should do well.
        let mut corpus = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..300u64 {
            let cluster = (i % 3) as usize;
            let mut v = vec![0.0f32; 8];
            v[cluster] = 10.0;
            for x in v.iter_mut() {
                *x += rng.random_range(-0.1..0.1);
            }
            corpus.push((i, v));
        }
        let cfg = IvfConfig {
            nlist: 3,
            nprobe: 1,
            iterations: 20,
            ..Default::default()
        };
        let ivf = IvfIndex::build(8, Metric::Euclidean, cfg, &corpus);
        let mut flat = FlatIndex::new(8, Metric::Euclidean);
        for (_, v) in &corpus {
            flat.add(v);
        }
        let q = &corpus[0].1;
        let truth: Vec<VecId> = flat.search(q, 10).iter().map(|h| h.id).collect();
        let approx: Vec<VecId> = ivf.search(q, 10).iter().map(|h| h.id).collect();
        let recall = truth.iter().filter(|t| approx.contains(t)).count();
        assert!(recall >= 9, "recall {recall}/10");
    }
}
