//! Tools — the `@tool()` equivalent.
//!
//! Paper §2.3: "All tools adhere to a similar pattern in terms of input and
//! output. The general docstring of a tool summarizes what each tool
//! accomplishes and when it is appropriate to use. The Args section of the
//! docstring can be used to describe the input and output arguments [...]
//! Providing a few examples of usage within the docstring proved to be the
//! most efficient solution to improve the quality of the reasoning agent."
//!
//! A [`ToolSpec`] carries exactly that metadata; the deterministic reasoner
//! scores it the way the LLM agent would read it.

use crate::error::{ArchytasError, ArchytasResult};
use serde_json::{Map, Value};

/// Declared type of a tool argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArgKind {
    Str,
    Int,
    Float,
    Bool,
    StrList,
}

/// One argument of a tool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgSpec {
    pub name: String,
    pub kind: ArgKind,
    pub description: String,
    pub required: bool,
}

impl ArgSpec {
    pub fn new(name: impl Into<String>, kind: ArgKind, description: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind,
            description: description.into(),
            required: true,
        }
    }

    pub fn optional(mut self) -> Self {
        self.required = false;
        self
    }
}

/// Tool metadata — what the reasoning agent reads.
#[derive(Clone, Debug, PartialEq)]
pub struct ToolSpec {
    /// Machine name, e.g. `create_schema`.
    pub name: String,
    /// The docstring: what the tool does and when to use it.
    pub docstring: String,
    pub args: Vec<ArgSpec>,
    /// Example user requests this tool serves (docstring examples).
    pub examples: Vec<String>,
}

impl ToolSpec {
    pub fn new(name: impl Into<String>, docstring: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            docstring: docstring.into(),
            args: Vec::new(),
            examples: Vec::new(),
        }
    }

    pub fn with_arg(mut self, arg: ArgSpec) -> Self {
        self.args.push(arg);
        self
    }

    pub fn with_example(mut self, ex: impl Into<String>) -> Self {
        self.examples.push(ex.into());
        self
    }
}

/// Result of a tool invocation: text for the observation plus structured
/// data for downstream tools.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ToolOutput {
    pub text: String,
    pub data: Value,
}

impl ToolOutput {
    pub fn text(s: impl Into<String>) -> Self {
        Self {
            text: s.into(),
            data: Value::Null,
        }
    }

    pub fn with_data(mut self, data: Value) -> Self {
        self.data = data;
        self
    }
}

/// Arguments passed to a tool.
pub type ToolArgs = Map<String, Value>;

/// A callable tool.
pub trait Tool: Send + Sync {
    fn spec(&self) -> &ToolSpec;

    /// Invoke with validated arguments.
    fn invoke(&self, args: &ToolArgs) -> ArchytasResult<ToolOutput>;
}

/// Validate and coerce `args` against a spec: required args present,
/// values of the declared kind (numbers may arrive as numeric strings from
/// slot extraction; they are coerced). Unknown arguments are rejected.
pub fn validate_args(spec: &ToolSpec, args: &ToolArgs) -> ArchytasResult<ToolArgs> {
    for key in args.keys() {
        if !spec.args.iter().any(|a| &a.name == key) {
            return Err(ArchytasError::BadArguments {
                tool: spec.name.clone(),
                reason: format!("unknown argument {key:?}"),
            });
        }
    }
    let mut out = ToolArgs::new();
    for a in &spec.args {
        match args.get(&a.name) {
            None | Some(Value::Null) => {
                if a.required {
                    return Err(ArchytasError::BadArguments {
                        tool: spec.name.clone(),
                        reason: format!("missing required argument {:?}", a.name),
                    });
                }
            }
            Some(v) => {
                out.insert(a.name.clone(), coerce(spec, a, v)?);
            }
        }
    }
    Ok(out)
}

fn coerce(spec: &ToolSpec, a: &ArgSpec, v: &Value) -> ArchytasResult<Value> {
    let bad = |why: &str| ArchytasError::BadArguments {
        tool: spec.name.clone(),
        reason: format!("argument {:?}: {why}", a.name),
    };
    Ok(match (a.kind, v) {
        (ArgKind::Str, Value::String(_)) => v.clone(),
        (ArgKind::Str, other) => Value::String(match other {
            Value::Number(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            _ => return Err(bad("expected string")),
        }),
        (ArgKind::Int, Value::Number(n)) if n.is_i64() => v.clone(),
        (ArgKind::Int, Value::String(s)) => Value::from(
            s.trim()
                .parse::<i64>()
                .map_err(|_| bad("expected integer"))?,
        ),
        (ArgKind::Int, _) => return Err(bad("expected integer")),
        (ArgKind::Float, Value::Number(_)) => v.clone(),
        (ArgKind::Float, Value::String(s)) => Value::from(
            s.trim()
                .parse::<f64>()
                .map_err(|_| bad("expected number"))?,
        ),
        (ArgKind::Float, _) => return Err(bad("expected number")),
        (ArgKind::Bool, Value::Bool(_)) => v.clone(),
        (ArgKind::Bool, Value::String(s)) => match s.to_ascii_lowercase().as_str() {
            "true" | "yes" => Value::Bool(true),
            "false" | "no" => Value::Bool(false),
            _ => return Err(bad("expected boolean")),
        },
        (ArgKind::Bool, _) => return Err(bad("expected boolean")),
        (ArgKind::StrList, Value::Array(items)) => {
            let mut list = Vec::with_capacity(items.len());
            for it in items {
                match it {
                    Value::String(s) => list.push(Value::String(s.clone())),
                    _ => return Err(bad("expected list of strings")),
                }
            }
            Value::Array(list)
        }
        (ArgKind::StrList, Value::String(s)) => Value::Array(
            s.split(',')
                .map(|p| Value::String(p.trim().to_string()))
                .collect(),
        ),
        (ArgKind::StrList, _) => return Err(bad("expected list of strings")),
    })
}

/// A tool built from a closure — the `@tool()` decorator equivalent.
pub struct FnTool<F> {
    spec: ToolSpec,
    f: F,
}

impl<F> FnTool<F>
where
    F: Fn(&ToolArgs) -> ArchytasResult<ToolOutput> + Send + Sync,
{
    pub fn new(spec: ToolSpec, f: F) -> Self {
        Self { spec, f }
    }
}

impl<F> Tool for FnTool<F>
where
    F: Fn(&ToolArgs) -> ArchytasResult<ToolOutput> + Send + Sync,
{
    fn spec(&self) -> &ToolSpec {
        &self.spec
    }

    fn invoke(&self, args: &ToolArgs) -> ArchytasResult<ToolOutput> {
        let validated = validate_args(&self.spec, args)?;
        (self.f)(&validated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn spec() -> ToolSpec {
        ToolSpec::new("create_schema", "Generate a new extraction schema.")
            .with_arg(ArgSpec::new("schema_name", ArgKind::Str, "Name"))
            .with_arg(ArgSpec::new("field_names", ArgKind::StrList, "Fields"))
            .with_arg(ArgSpec::new("max_fields", ArgKind::Int, "Cap").optional())
            .with_example("extract author information from a paper")
    }

    fn args(v: Value) -> ToolArgs {
        v.as_object().unwrap().clone()
    }

    #[test]
    fn validate_accepts_good_args() {
        let out = validate_args(
            &spec(),
            &args(json!({"schema_name": "Author", "field_names": ["name", "email"]})),
        )
        .unwrap();
        assert_eq!(out["schema_name"], "Author");
        assert_eq!(out["field_names"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn validate_rejects_missing_required() {
        let err = validate_args(&spec(), &args(json!({"schema_name": "A"}))).unwrap_err();
        assert!(err.to_string().contains("field_names"));
    }

    #[test]
    fn validate_rejects_unknown() {
        let err = validate_args(
            &spec(),
            &args(json!({"schema_name": "A", "field_names": [], "wat": 1})),
        )
        .unwrap_err();
        assert!(err.to_string().contains("wat"));
    }

    #[test]
    fn optional_args_may_be_absent() {
        let out = validate_args(
            &spec(),
            &args(json!({"schema_name": "A", "field_names": ["x"]})),
        )
        .unwrap();
        assert!(!out.contains_key("max_fields"));
    }

    #[test]
    fn coercions() {
        let out = validate_args(
            &spec(),
            &args(json!({
                "schema_name": 42,
                "field_names": "a, b , c",
                "max_fields": "7"
            })),
        )
        .unwrap();
        assert_eq!(out["schema_name"], "42");
        assert_eq!(out["field_names"].as_array().unwrap().len(), 3);
        assert_eq!(out["field_names"][1], "b");
        assert_eq!(out["max_fields"], 7);
    }

    #[test]
    fn bad_coercions_fail() {
        assert!(validate_args(
            &spec(),
            &args(json!({"schema_name": "A", "field_names": ["x"], "max_fields": "many"})),
        )
        .is_err());
        assert!(validate_args(
            &spec(),
            &args(json!({"schema_name": "A", "field_names": [1, 2]})),
        )
        .is_err());
    }

    #[test]
    fn fn_tool_invokes_with_validation() {
        let tool = FnTool::new(spec(), |a: &ToolArgs| {
            Ok(ToolOutput::text(format!(
                "created {}",
                a["schema_name"].as_str().unwrap()
            )))
        });
        let out = tool
            .invoke(&args(
                json!({"schema_name": "Author", "field_names": ["n"]}),
            ))
            .unwrap();
        assert_eq!(out.text, "created Author");
        // Validation runs inside invoke.
        assert!(tool.invoke(&args(json!({}))).is_err());
    }

    #[test]
    fn spec_builder() {
        let s = spec();
        assert_eq!(s.name, "create_schema");
        assert_eq!(s.args.len(), 3);
        assert_eq!(s.examples.len(), 1);
        assert!(!s.args[2].required);
    }
}
