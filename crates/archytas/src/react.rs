//! ReAct traces: Thought → Action → Observation sequences.
//!
//! Figure 4 shows the observable artifact: "the agent reasons and may
//! decide to decompose a user question into several tasks required before
//! execution." A [`ReactTrace`] records that decomposition.

use crate::tool::ToolArgs;
use serde_json::Value;

/// One tool invocation the agent decided on.
#[derive(Clone, Debug, PartialEq)]
pub struct Action {
    pub tool: String,
    pub args: ToolArgs,
}

/// One Thought → Action → Observation cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct ReactStep {
    /// The reasoning that led to the action.
    pub thought: String,
    /// The action taken (None on the terminal "finish" step).
    pub action: Option<Action>,
    /// What the tool returned (or the error text).
    pub observation: String,
    /// Structured data returned by the tool.
    pub data: Value,
    /// Whether the tool invocation failed.
    pub failed: bool,
}

/// The full trace of one agent run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReactTrace {
    pub goal: String,
    pub steps: Vec<ReactStep>,
    pub answer: String,
}

impl ReactTrace {
    /// Number of tool invocations (excluding the finish step).
    pub fn action_count(&self) -> usize {
        self.steps.iter().filter(|s| s.action.is_some()).count()
    }

    /// Names of the tools invoked, in order.
    pub fn tools_used(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| s.action.as_ref().map(|a| a.tool.as_str()))
            .collect()
    }

    /// Render the trace the way the chat UI shows it (Figure 4).
    pub fn render(&self) -> String {
        let mut s = format!("Goal: {}\n", self.goal);
        for (i, step) in self.steps.iter().enumerate() {
            s.push_str(&format!("Thought {}: {}\n", i + 1, step.thought));
            if let Some(a) = &step.action {
                s.push_str(&format!(
                    "Action {}: {}({})\n",
                    i + 1,
                    a.tool,
                    serde_json::to_string(&a.args).unwrap_or_default()
                ));
                s.push_str(&format!("Observation {}: {}\n", i + 1, step.observation));
            }
        }
        s.push_str(&format!("Answer: {}\n", self.answer));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Map;

    fn step(tool: Option<&str>) -> ReactStep {
        ReactStep {
            thought: "think".into(),
            action: tool.map(|t| Action {
                tool: t.into(),
                args: Map::new(),
            }),
            observation: "obs".into(),
            data: Value::Null,
            failed: false,
        }
    }

    #[test]
    fn counts_and_tools() {
        let trace = ReactTrace {
            goal: "g".into(),
            steps: vec![step(Some("a")), step(Some("b")), step(None)],
            answer: "done".into(),
        };
        assert_eq!(trace.action_count(), 2);
        assert_eq!(trace.tools_used(), vec!["a", "b"]);
    }

    #[test]
    fn render_contains_thoughts_actions_answer() {
        let trace = ReactTrace {
            goal: "extract datasets".into(),
            steps: vec![step(Some("create_schema"))],
            answer: "pipeline built".into(),
        };
        let r = trace.render();
        assert!(r.contains("Goal: extract datasets"));
        assert!(r.contains("Thought 1"));
        assert!(r.contains("Action 1: create_schema"));
        assert!(r.contains("Answer: pipeline built"));
    }
}
