//! Jinja-style templating.
//!
//! Figure 2: "a Jinja-based templated syntax can be used to inject run-time
//! variables. Within the tool code, if a variable is expressed in round
//! brackets as `{{variable}}`, the Archytas agent will fill the variable
//! with a variable available at run-time."
//!
//! Supported subset:
//! * `{{ var }}` — substitution (with dotted paths into objects:
//!   `{{ user.name }}`);
//! * filters: `{{ var | upper }}`, `lower`, `trim`, `json`, `length`,
//!   `title`, `join` (arrays → comma-separated);
//! * `{% if var %} … {% else %} … {% endif %}` — truthiness: null, false,
//!   "", 0 and empty arrays are false;
//! * `{% for x in items %} … {% endfor %}` — iteration over arrays, with
//!   `{{ loop.index }}` (1-based).
//!
//! Unknown variables render as the empty string (matching Jinja's default
//! lenient mode); syntax errors are reported as [`ArchytasError::Template`].

use crate::error::{ArchytasError, ArchytasResult};
use serde_json::Value;
use std::collections::BTreeMap;

/// Variable bindings for a render.
pub type Bindings = BTreeMap<String, Value>;

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Text(String),
    /// Variable path + filter chain.
    Var(Vec<String>, Vec<String>),
    If {
        path: Vec<String>,
        then_body: Vec<Node>,
        else_body: Vec<Node>,
    },
    For {
        var: String,
        path: Vec<String>,
        body: Vec<Node>,
    },
}

/// Render `template` with `vars`.
pub fn render_template(template: &str, vars: &Bindings) -> ArchytasResult<String> {
    let nodes = parse(template)?;
    let mut out = String::new();
    render_nodes(&nodes, vars, &mut out)?;
    Ok(out)
}

// --- Parsing ---------------------------------------------------------------

fn parse(template: &str) -> ArchytasResult<Vec<Node>> {
    let mut tokens = tokenize(template)?;
    let (nodes, rest) = parse_block(&mut tokens, None)?;
    if let Some(tag) = rest {
        return Err(ArchytasError::Template(format!("unexpected {{% {tag} %}}")));
    }
    Ok(nodes)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Text(String),
    Expr(String),
    Tag(String),
}

fn tokenize(template: &str) -> ArchytasResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut rest = template;
    loop {
        let next_expr = rest.find("{{");
        let next_tag = rest.find("{%");
        let (pos, is_expr) = match (next_expr, next_tag) {
            (None, None) => {
                if !rest.is_empty() {
                    tokens.push(Token::Text(rest.to_string()));
                }
                break;
            }
            (Some(e), None) => (e, true),
            (None, Some(t)) => (t, false),
            (Some(e), Some(t)) => {
                if e < t {
                    (e, true)
                } else {
                    (t, false)
                }
            }
        };
        if pos > 0 {
            tokens.push(Token::Text(rest[..pos].to_string()));
        }
        rest = &rest[pos..];
        let (open, close) = if is_expr { ("{{", "}}") } else { ("{%", "%}") };
        let end = rest[open.len()..]
            .find(close)
            .ok_or_else(|| ArchytasError::Template(format!("unclosed {open}")))?;
        let inner = rest[open.len()..open.len() + end].trim().to_string();
        tokens.push(if is_expr {
            Token::Expr(inner)
        } else {
            Token::Tag(inner)
        });
        rest = &rest[open.len() + end + close.len()..];
    }
    tokens.reverse(); // consume from the back
    Ok(tokens)
}

/// Parse until an end tag belonging to the enclosing construct; returns the
/// consumed nodes and the terminating tag (if any).
fn parse_block(
    tokens: &mut Vec<Token>,
    _enclosing: Option<&str>,
) -> ArchytasResult<(Vec<Node>, Option<String>)> {
    let mut nodes = Vec::new();
    while let Some(tok) = tokens.pop() {
        match tok {
            Token::Text(t) => nodes.push(Node::Text(t)),
            Token::Expr(e) => nodes.push(parse_expr(&e)?),
            Token::Tag(tag) => {
                if let Some(cond) = tag.strip_prefix("if ") {
                    let path = parse_path(cond.trim())?;
                    let (then_body, term) = parse_block(tokens, Some("if"))?;
                    let (else_body, term) = match term.as_deref() {
                        Some("else") => {
                            let (e, t) = parse_block(tokens, Some("if"))?;
                            (e, t)
                        }
                        other => (Vec::new(), other.map(|s| s.to_string())),
                    };
                    if term.as_deref() != Some("endif") {
                        return Err(ArchytasError::Template("missing {% endif %}".into()));
                    }
                    nodes.push(Node::If {
                        path,
                        then_body,
                        else_body,
                    });
                } else if let Some(rest_tag) = tag.strip_prefix("for ") {
                    let spec = rest_tag.trim();
                    let (var, path_str) = spec
                        .split_once(" in ")
                        .ok_or_else(|| ArchytasError::Template("for needs `x in xs`".into()))?;
                    let (body, term) = parse_block(tokens, Some("for"))?;
                    if term.as_deref() != Some("endfor") {
                        return Err(ArchytasError::Template("missing {% endfor %}".into()));
                    }
                    nodes.push(Node::For {
                        var: var.trim().to_string(),
                        path: parse_path(path_str.trim())?,
                        body,
                    });
                } else if tag == "else" || tag == "endif" || tag == "endfor" {
                    return Ok((nodes, Some(tag)));
                } else {
                    return Err(ArchytasError::Template(format!("unknown tag {tag:?}")));
                }
            }
        }
    }
    Ok((nodes, None))
}

fn parse_expr(e: &str) -> ArchytasResult<Node> {
    let mut parts = e.split('|').map(str::trim);
    let path = parse_path(parts.next().unwrap_or_default())?;
    let filters: Vec<String> = parts.map(|f| f.to_string()).collect();
    for f in &filters {
        if !matches!(
            f.as_str(),
            "upper" | "lower" | "trim" | "json" | "length" | "title" | "join"
        ) {
            return Err(ArchytasError::Template(format!("unknown filter {f:?}")));
        }
    }
    Ok(Node::Var(path, filters))
}

fn parse_path(s: &str) -> ArchytasResult<Vec<String>> {
    if s.is_empty() {
        return Err(ArchytasError::Template("empty variable".into()));
    }
    let path: Vec<String> = s.split('.').map(|p| p.trim().to_string()).collect();
    if path.iter().any(|p| p.is_empty()) {
        return Err(ArchytasError::Template(format!("bad path {s:?}")));
    }
    Ok(path)
}

// --- Rendering --------------------------------------------------------------

fn lookup<'a>(vars: &'a Bindings, path: &[String]) -> Option<&'a Value> {
    let mut current = vars.get(&path[0])?;
    for seg in &path[1..] {
        current = match current {
            Value::Object(map) => map.get(seg)?,
            Value::Array(arr) => arr.get(seg.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(current)
}

fn truthy(v: Option<&Value>) -> bool {
    match v {
        None | Some(Value::Null) => false,
        Some(Value::Bool(b)) => *b,
        Some(Value::Number(n)) => n.as_f64().map(|f| f != 0.0).unwrap_or(true),
        Some(Value::String(s)) => !s.is_empty(),
        Some(Value::Array(a)) => !a.is_empty(),
        Some(Value::Object(_)) => true,
    }
}

fn to_display(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::String(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => n.to_string(),
        other => serde_json::to_string(other).unwrap_or_default(),
    }
}

fn render_nodes(nodes: &[Node], vars: &Bindings, out: &mut String) -> ArchytasResult<()> {
    for node in nodes {
        match node {
            Node::Text(t) => out.push_str(t),
            Node::Var(path, filters) => {
                let mut s = lookup(vars, path).map(to_display).unwrap_or_default();
                for f in filters {
                    s = match f.as_str() {
                        "upper" => s.to_uppercase(),
                        "lower" => s.to_lowercase(),
                        "trim" => s.trim().to_string(),
                        "json" => {
                            let v = lookup(vars, path).cloned().unwrap_or(Value::Null);
                            serde_json::to_string(&v).unwrap_or_default()
                        }
                        "length" => match lookup(vars, path) {
                            Some(Value::Array(a)) => a.len().to_string(),
                            Some(Value::String(st)) => st.chars().count().to_string(),
                            Some(Value::Object(o)) => o.len().to_string(),
                            _ => "0".to_string(),
                        },
                        "title" => {
                            let mut out = String::with_capacity(s.len());
                            let mut cap = true;
                            for ch in s.chars() {
                                if cap && ch.is_alphabetic() {
                                    out.extend(ch.to_uppercase());
                                    cap = false;
                                } else {
                                    out.push(ch);
                                    if ch.is_whitespace() {
                                        cap = true;
                                    }
                                }
                            }
                            out
                        }
                        "join" => match lookup(vars, path) {
                            Some(Value::Array(a)) => {
                                a.iter().map(to_display).collect::<Vec<_>>().join(", ")
                            }
                            _ => s,
                        },
                        _ => unreachable!("filters validated at parse"),
                    };
                }
                out.push_str(&s);
            }
            Node::If {
                path,
                then_body,
                else_body,
            } => {
                if truthy(lookup(vars, path)) {
                    render_nodes(then_body, vars, out)?;
                } else {
                    render_nodes(else_body, vars, out)?;
                }
            }
            Node::For { var, path, body } => {
                if let Some(Value::Array(items)) = lookup(vars, path) {
                    for (i, item) in items.iter().enumerate() {
                        let mut scope = vars.clone();
                        scope.insert(var.clone(), item.clone());
                        scope.insert(
                            "loop".to_string(),
                            serde_json::json!({ "index": i + 1, "first": i == 0 }),
                        );
                        render_nodes(body, &scope, out)?;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde_json::json;

    fn vars(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn substitution() {
        let v = vars(&[("schema_name", json!("Author"))]);
        assert_eq!(
            render_template("class_name = \"{{ schema_name }}\"", &v).unwrap(),
            "class_name = \"Author\""
        );
    }

    #[test]
    fn missing_variable_is_empty() {
        assert_eq!(
            render_template("[{{ nope }}]", &Bindings::new()).unwrap(),
            "[]"
        );
    }

    #[test]
    fn dotted_paths() {
        let v = vars(&[("user", json!({"name": "Ada", "org": {"id": 7}}))]);
        assert_eq!(
            render_template("{{ user.name }}/{{ user.org.id }}", &v).unwrap(),
            "Ada/7"
        );
    }

    #[test]
    fn array_index_path() {
        let v = vars(&[("xs", json!(["a", "b"]))]);
        assert_eq!(render_template("{{ xs.1 }}", &v).unwrap(), "b");
    }

    #[test]
    fn filters() {
        let v = vars(&[("s", json!("  MiXeD  "))]);
        assert_eq!(
            render_template("{{ s | trim | lower }}", &v).unwrap(),
            "mixed"
        );
        assert_eq!(
            render_template("{{ s | upper | trim }}", &v).unwrap(),
            "MIXED"
        );
        let v = vars(&[("xs", json!([1, 2]))]);
        assert_eq!(render_template("{{ xs | json }}", &v).unwrap(), "[1,2]");
    }

    #[test]
    fn extended_filters() {
        let v = vars(&[("xs", json!(["a", "b", "c"])), ("s", json!("hello world"))]);
        assert_eq!(render_template("{{ xs | length }}", &v).unwrap(), "3");
        assert_eq!(render_template("{{ s | length }}", &v).unwrap(), "11");
        assert_eq!(render_template("{{ xs | join }}", &v).unwrap(), "a, b, c");
        assert_eq!(
            render_template("{{ s | title }}", &v).unwrap(),
            "Hello World"
        );
        assert_eq!(render_template("{{ missing | length }}", &v).unwrap(), "0");
    }

    #[test]
    fn unknown_filter_errors() {
        assert!(matches!(
            render_template("{{ x | reverse }}", &Bindings::new()),
            Err(ArchytasError::Template(_))
        ));
    }

    #[test]
    fn if_else() {
        let t = "{% if flag %}yes{% else %}no{% endif %}";
        assert_eq!(
            render_template(t, &vars(&[("flag", json!(true))])).unwrap(),
            "yes"
        );
        assert_eq!(
            render_template(t, &vars(&[("flag", json!(false))])).unwrap(),
            "no"
        );
        assert_eq!(render_template(t, &Bindings::new()).unwrap(), "no");
        assert_eq!(
            render_template(t, &vars(&[("flag", json!(""))])).unwrap(),
            "no"
        );
        assert_eq!(
            render_template(t, &vars(&[("flag", json!([1]))])).unwrap(),
            "yes"
        );
    }

    #[test]
    fn if_without_else() {
        let t = "{% if x %}on{% endif %}!";
        assert_eq!(
            render_template(t, &vars(&[("x", json!(1))])).unwrap(),
            "on!"
        );
        assert_eq!(render_template(t, &Bindings::new()).unwrap(), "!");
    }

    #[test]
    fn for_loop_with_index() {
        // The create_schema tool pattern from Figure 2: iterate fields.
        let v = vars(&[("fields", json!(["name", "email"]))]);
        let t = "{% for f in fields %}{{ loop.index }}:{{ f }};{% endfor %}";
        assert_eq!(render_template(t, &v).unwrap(), "1:name;2:email;");
    }

    #[test]
    fn for_over_objects() {
        let v = vars(&[("fs", json!([{"n": "a"}, {"n": "b"}]))]);
        let t = "{% for f in fs %}{{ f.n }}{% endfor %}";
        assert_eq!(render_template(t, &v).unwrap(), "ab");
    }

    #[test]
    fn nested_constructs() {
        let v = vars(&[("xs", json!([0, 1, 2]))]);
        let t = "{% for x in xs %}{% if x %}{{ x }}{% else %}z{% endif %}{% endfor %}";
        assert_eq!(render_template(t, &v).unwrap(), "z12");
    }

    #[test]
    fn syntax_errors() {
        assert!(render_template("{{ unclosed", &Bindings::new()).is_err());
        assert!(render_template("{% if x %}no end", &Bindings::new()).is_err());
        assert!(render_template("{% for x in %}{% endfor %}", &Bindings::new()).is_err());
        assert!(render_template("{% endwhile %}", &Bindings::new()).is_err());
        assert!(render_template("{% endfor %}", &Bindings::new()).is_err());
    }

    #[test]
    fn figure2_tool_body_renders() {
        let v = vars(&[
            ("schema_name", json!("Author")),
            ("schema_description", json!("Author info")),
            ("field_names", json!(["name", "email", "affiliation"])),
            (
                "field_descriptions",
                json!(["The author's name", "Email address", "Affiliation"]),
            ),
        ]);
        let t = "class_name = \"{{ schema_name }}\"\n\
                 doc = \"{{ schema_description }}\"\n\
                 {% for f in field_names %}field {{ loop.index }}: {{ f }}\n{% endfor %}";
        let out = render_template(t, &v).unwrap();
        assert!(out.contains("class_name = \"Author\""));
        assert!(out.contains("field 3: affiliation"));
    }

    proptest! {
        #[test]
        fn plain_text_round_trips(text in "[^{%]*") {
            prop_assert_eq!(render_template(&text, &Bindings::new()).unwrap(), text);
        }

        #[test]
        fn substitution_injects_value(name in "[a-z]{1,8}", val in "[a-zA-Z0-9 ]{0,20}") {
            let v = vars(&[(&name, json!(val.clone()))]);
            let t = format!("pre {{{{ {name} }}}} post");
            prop_assert_eq!(render_template(&t, &v).unwrap(), format!("pre {val} post"));
        }

        #[test]
        fn never_panics(template in "(?s).{0,80}") {
            let _ = render_template(&template, &Bindings::new());
        }
    }
}
