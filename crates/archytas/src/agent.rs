//! The agent loop.
//!
//! §2.2: "By implementing ReAct, an agent can decompose a user request
//! into smaller steps, decide which tools to invoke for each step, provide
//! corresponding input to those tools, and iterate until the task is
//! complete." A failed tool invocation becomes an observation (the agent
//! sees the error and keeps going), mirroring how LLM agents recover.

use crate::error::{ArchytasError, ArchytasResult};
use crate::planner::{PlannerDecision, Reasoner};
use crate::react::{Action, ReactStep, ReactTrace};
use crate::registry::ToolRegistry;
use pz_obs::{Layer, Tracer};
use serde_json::Value;
use std::sync::Arc;

/// A ReAct agent: tools + a reasoner + a step budget.
pub struct Agent {
    registry: ToolRegistry,
    reasoner: Arc<dyn Reasoner>,
    max_steps: usize,
    tracer: Option<Tracer>,
}

impl Agent {
    pub fn new(registry: ToolRegistry, reasoner: Arc<dyn Reasoner>) -> Self {
        Self {
            registry,
            reasoner,
            max_steps: 16,
            tracer: None,
        }
    }

    pub fn with_max_steps(mut self, n: usize) -> Self {
        self.max_steps = n.max(1);
        self
    }

    /// Record thought / act / observe spans for every step on `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    pub fn registry(&self) -> &ToolRegistry {
        &self.registry
    }

    /// Run the ReAct loop for one user goal.
    pub fn run(&self, goal: &str) -> ArchytasResult<ReactTrace> {
        let mut trace = ReactTrace {
            goal: goal.to_string(),
            ..Default::default()
        };
        let run_span = self.tracer.as_ref().map(|t| {
            let s = t.span(Layer::Agent, "react");
            s.set_attr("goal", clip(goal));
            s
        });
        for i in 0..self.max_steps {
            let decision = self.reasoner.decide(goal, &self.registry, &trace.steps)?;
            match decision {
                PlannerDecision::Finish { thought, answer } => {
                    if let Some(t) = &self.tracer {
                        let s = t.leaf_span(Layer::Agent, "finish");
                        s.set_attr("thought", clip(&thought));
                        s.set_attr("answer", clip(&answer));
                    }
                    trace.steps.push(ReactStep {
                        thought,
                        action: None,
                        observation: String::new(),
                        data: Value::Null,
                        failed: false,
                    });
                    trace.answer = answer;
                    if let Some(s) = run_span {
                        s.set_attr("steps", trace.steps.len().to_string());
                        s.set_attr("actions", trace.action_count().to_string());
                    }
                    return Ok(trace);
                }
                PlannerDecision::Act {
                    thought,
                    tool,
                    args,
                } => {
                    if let Some(t) = &self.tracer {
                        let s = t.leaf_span(Layer::Agent, &format!("thought:{}", i + 1));
                        s.set_attr("text", clip(&thought));
                    }
                    // Structural: spans the tool produces (optimizer,
                    // executor, LLM calls) nest under the act span.
                    let act_span = self.tracer.as_ref().map(|t| {
                        let s = t.span(Layer::Agent, &format!("act:{tool}"));
                        s.set_attr(
                            "args",
                            clip(&serde_json::to_string(&args).unwrap_or_default()),
                        );
                        s
                    });
                    let (observation, data, failed) = match self.registry.get(&tool) {
                        Ok(t) => match t.invoke(&args) {
                            Ok(out) => (out.text, out.data, false),
                            Err(e) => (format!("error: {e}"), Value::Null, true),
                        },
                        Err(e) => (format!("error: {e}"), Value::Null, true),
                    };
                    if let Some(s) = act_span {
                        s.set_attr("failed", failed.to_string());
                        s.finish();
                    }
                    if let Some(t) = &self.tracer {
                        let s = t.leaf_span(Layer::Agent, &format!("observe:{}", i + 1));
                        s.set_attr("text", clip(&observation));
                        s.set_attr("failed", failed.to_string());
                    }
                    trace.steps.push(ReactStep {
                        thought,
                        action: Some(Action { tool, args }),
                        observation,
                        data,
                        failed,
                    });
                }
            }
        }
        Err(ArchytasError::MaxStepsExceeded(self.max_steps))
    }
}

/// Cap attribute text so traces stay readable and exports stay small.
fn clip(s: &str) -> String {
    const MAX: usize = 120;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let cut: String = s.chars().take(MAX - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::KeywordReasoner;
    use crate::tool::{ArgKind, ArgSpec, FnTool, ToolArgs, ToolOutput, ToolSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn registry() -> ToolRegistry {
        let mut r = ToolRegistry::new();
        r.register(Arc::new(FnTool::new(
            ToolSpec::new("load_dataset", "Load an input dataset for processing.")
                .with_arg(ArgSpec::new("name", ArgKind::Str, "Dataset name"))
                .with_example("load the papers dataset"),
            |a: &ToolArgs| {
                Ok(ToolOutput::text(format!(
                    "loaded dataset {}",
                    a["name"].as_str().unwrap_or("?")
                )))
            },
        )));
        r.register(Arc::new(FnTool::new(
            ToolSpec::new(
                "filter_records",
                "Filter records with a natural language predicate.",
            )
            .with_arg(ArgSpec::new("predicate", ArgKind::Str, "The condition"))
            .with_example("filter for papers about some topic"),
            |_: &ToolArgs| Ok(ToolOutput::text("12 records remain")),
        )));
        r
    }

    #[test]
    fn multi_step_decomposition() {
        let agent = Agent::new(registry(), Arc::new(KeywordReasoner::new()));
        let trace = agent
            .run(r#"load the dataset "demo" and then filter for "cancer" records"#)
            .unwrap();
        assert_eq!(trace.tools_used(), vec!["load_dataset", "filter_records"]);
        assert_eq!(trace.action_count(), 2);
        assert!(trace.answer.contains("loaded dataset demo"));
        assert!(trace.answer.contains("12 records remain"));
    }

    #[test]
    fn failed_tool_becomes_observation() {
        let mut r = registry();
        r.register(Arc::new(FnTool::new(
            ToolSpec::new("explode", "Always fails when you try to explode something.")
                .with_example("explode the thing"),
            |_: &ToolArgs| {
                Err(ArchytasError::ToolFailed {
                    tool: "explode".into(),
                    reason: "boom".into(),
                })
            },
        )));
        let agent = Agent::new(r, Arc::new(KeywordReasoner::new()));
        let trace = agent.run("explode the thing").unwrap();
        assert_eq!(trace.action_count(), 1);
        assert!(trace.steps[0].failed);
        assert!(trace.steps[0].observation.contains("boom"));
        // The loop still finished.
        assert!(!trace.answer.is_empty());
    }

    #[test]
    fn step_budget_enforced() {
        // A reasoner that never finishes.
        struct Looper;
        impl Reasoner for Looper {
            fn decide(
                &self,
                _g: &str,
                _r: &ToolRegistry,
                _h: &[ReactStep],
            ) -> ArchytasResult<PlannerDecision> {
                Ok(PlannerDecision::Act {
                    thought: "again".into(),
                    tool: "load_dataset".into(),
                    args: ToolArgs::new(),
                })
            }
        }
        let agent = Agent::new(registry(), Arc::new(Looper)).with_max_steps(3);
        assert_eq!(agent.run("loop"), Err(ArchytasError::MaxStepsExceeded(3)));
    }

    #[test]
    fn unknown_tool_from_reasoner_is_observed_not_fatal() {
        struct Wrong {
            calls: AtomicUsize,
        }
        impl Reasoner for Wrong {
            fn decide(
                &self,
                _g: &str,
                _r: &ToolRegistry,
                _h: &[ReactStep],
            ) -> ArchytasResult<PlannerDecision> {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    Ok(PlannerDecision::Act {
                        thought: "try ghost".into(),
                        tool: "ghost".into(),
                        args: ToolArgs::new(),
                    })
                } else {
                    Ok(PlannerDecision::Finish {
                        thought: "give up".into(),
                        answer: "done".into(),
                    })
                }
            }
        }
        let agent = Agent::new(
            registry(),
            Arc::new(Wrong {
                calls: AtomicUsize::new(0),
            }),
        );
        let trace = agent.run("whatever").unwrap();
        assert!(trace.steps[0].failed);
        assert!(trace.steps[0].observation.contains("unknown tool"));
        assert_eq!(trace.answer, "done");
    }

    #[test]
    fn tracer_records_thought_act_observe_spans() {
        let tracer = pz_obs::Tracer::new(Arc::new(pz_obs::FrozenClock(7)));
        let agent =
            Agent::new(registry(), Arc::new(KeywordReasoner::new())).with_tracer(tracer.clone());
        agent
            .run(r#"load the dataset "demo" and then filter for "cancer" records"#)
            .unwrap();
        let snap = tracer.snapshot();
        let agent_spans = snap.spans_in_layer(pz_obs::Layer::Agent);
        let names: Vec<&str> = agent_spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"react"));
        assert!(names.contains(&"thought:1"));
        assert!(names.contains(&"act:load_dataset"));
        assert!(names.contains(&"observe:1"));
        assert!(names.contains(&"act:filter_records"));
        assert!(names.contains(&"finish"));
        // Everything nests under the single react root.
        let root = &agent_spans[0];
        assert!(root.id.is_root());
        assert!(agent_spans[1..].iter().all(|s| root.id.contains(&s.id)));
        assert_eq!(root.attrs["actions"], "2");
    }

    #[test]
    fn trace_goal_recorded() {
        let agent = Agent::new(registry(), Arc::new(KeywordReasoner::new()));
        let trace = agent.run(r#"load the dataset "x""#).unwrap();
        assert_eq!(trace.goal, r#"load the dataset "x""#);
    }
}
