//! The agent loop.
//!
//! §2.2: "By implementing ReAct, an agent can decompose a user request
//! into smaller steps, decide which tools to invoke for each step, provide
//! corresponding input to those tools, and iterate until the task is
//! complete." A failed tool invocation becomes an observation (the agent
//! sees the error and keeps going), mirroring how LLM agents recover.

use crate::error::{ArchytasError, ArchytasResult};
use crate::planner::{PlannerDecision, Reasoner};
use crate::react::{Action, ReactStep, ReactTrace};
use crate::registry::ToolRegistry;
use serde_json::Value;
use std::sync::Arc;

/// A ReAct agent: tools + a reasoner + a step budget.
pub struct Agent {
    registry: ToolRegistry,
    reasoner: Arc<dyn Reasoner>,
    max_steps: usize,
}

impl Agent {
    pub fn new(registry: ToolRegistry, reasoner: Arc<dyn Reasoner>) -> Self {
        Self {
            registry,
            reasoner,
            max_steps: 16,
        }
    }

    pub fn with_max_steps(mut self, n: usize) -> Self {
        self.max_steps = n.max(1);
        self
    }

    pub fn registry(&self) -> &ToolRegistry {
        &self.registry
    }

    /// Run the ReAct loop for one user goal.
    pub fn run(&self, goal: &str) -> ArchytasResult<ReactTrace> {
        let mut trace = ReactTrace {
            goal: goal.to_string(),
            ..Default::default()
        };
        for _ in 0..self.max_steps {
            let decision = self.reasoner.decide(goal, &self.registry, &trace.steps)?;
            match decision {
                PlannerDecision::Finish { thought, answer } => {
                    trace.steps.push(ReactStep {
                        thought,
                        action: None,
                        observation: String::new(),
                        data: Value::Null,
                        failed: false,
                    });
                    trace.answer = answer;
                    return Ok(trace);
                }
                PlannerDecision::Act {
                    thought,
                    tool,
                    args,
                } => {
                    let (observation, data, failed) = match self.registry.get(&tool) {
                        Ok(t) => match t.invoke(&args) {
                            Ok(out) => (out.text, out.data, false),
                            Err(e) => (format!("error: {e}"), Value::Null, true),
                        },
                        Err(e) => (format!("error: {e}"), Value::Null, true),
                    };
                    trace.steps.push(ReactStep {
                        thought,
                        action: Some(Action { tool, args }),
                        observation,
                        data,
                        failed,
                    });
                }
            }
        }
        Err(ArchytasError::MaxStepsExceeded(self.max_steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::KeywordReasoner;
    use crate::tool::{ArgKind, ArgSpec, FnTool, ToolArgs, ToolOutput, ToolSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn registry() -> ToolRegistry {
        let mut r = ToolRegistry::new();
        r.register(Arc::new(FnTool::new(
            ToolSpec::new("load_dataset", "Load an input dataset for processing.")
                .with_arg(ArgSpec::new("name", ArgKind::Str, "Dataset name"))
                .with_example("load the papers dataset"),
            |a: &ToolArgs| {
                Ok(ToolOutput::text(format!(
                    "loaded dataset {}",
                    a["name"].as_str().unwrap_or("?")
                )))
            },
        )));
        r.register(Arc::new(FnTool::new(
            ToolSpec::new(
                "filter_records",
                "Filter records with a natural language predicate.",
            )
            .with_arg(ArgSpec::new("predicate", ArgKind::Str, "The condition"))
            .with_example("filter for papers about some topic"),
            |_: &ToolArgs| Ok(ToolOutput::text("12 records remain")),
        )));
        r
    }

    #[test]
    fn multi_step_decomposition() {
        let agent = Agent::new(registry(), Arc::new(KeywordReasoner::new()));
        let trace = agent
            .run(r#"load the dataset "demo" and then filter for "cancer" records"#)
            .unwrap();
        assert_eq!(trace.tools_used(), vec!["load_dataset", "filter_records"]);
        assert_eq!(trace.action_count(), 2);
        assert!(trace.answer.contains("loaded dataset demo"));
        assert!(trace.answer.contains("12 records remain"));
    }

    #[test]
    fn failed_tool_becomes_observation() {
        let mut r = registry();
        r.register(Arc::new(FnTool::new(
            ToolSpec::new("explode", "Always fails when you try to explode something.")
                .with_example("explode the thing"),
            |_: &ToolArgs| {
                Err(ArchytasError::ToolFailed {
                    tool: "explode".into(),
                    reason: "boom".into(),
                })
            },
        )));
        let agent = Agent::new(r, Arc::new(KeywordReasoner::new()));
        let trace = agent.run("explode the thing").unwrap();
        assert_eq!(trace.action_count(), 1);
        assert!(trace.steps[0].failed);
        assert!(trace.steps[0].observation.contains("boom"));
        // The loop still finished.
        assert!(!trace.answer.is_empty());
    }

    #[test]
    fn step_budget_enforced() {
        // A reasoner that never finishes.
        struct Looper;
        impl Reasoner for Looper {
            fn decide(
                &self,
                _g: &str,
                _r: &ToolRegistry,
                _h: &[ReactStep],
            ) -> ArchytasResult<PlannerDecision> {
                Ok(PlannerDecision::Act {
                    thought: "again".into(),
                    tool: "load_dataset".into(),
                    args: ToolArgs::new(),
                })
            }
        }
        let agent = Agent::new(registry(), Arc::new(Looper)).with_max_steps(3);
        assert_eq!(agent.run("loop"), Err(ArchytasError::MaxStepsExceeded(3)));
    }

    #[test]
    fn unknown_tool_from_reasoner_is_observed_not_fatal() {
        struct Wrong {
            calls: AtomicUsize,
        }
        impl Reasoner for Wrong {
            fn decide(
                &self,
                _g: &str,
                _r: &ToolRegistry,
                _h: &[ReactStep],
            ) -> ArchytasResult<PlannerDecision> {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    Ok(PlannerDecision::Act {
                        thought: "try ghost".into(),
                        tool: "ghost".into(),
                        args: ToolArgs::new(),
                    })
                } else {
                    Ok(PlannerDecision::Finish {
                        thought: "give up".into(),
                        answer: "done".into(),
                    })
                }
            }
        }
        let agent = Agent::new(
            registry(),
            Arc::new(Wrong {
                calls: AtomicUsize::new(0),
            }),
        );
        let trace = agent.run("whatever").unwrap();
        assert!(trace.steps[0].failed);
        assert!(trace.steps[0].observation.contains("unknown tool"));
        assert_eq!(trace.answer, "done");
    }

    #[test]
    fn trace_goal_recorded() {
        let agent = Agent::new(registry(), Arc::new(KeywordReasoner::new()));
        let trace = agent.run(r#"load the dataset "x""#).unwrap();
        assert_eq!(trace.goal, r#"load the dataset "x""#);
    }
}
