//! # archytas — ReAct agent framework
//!
//! Reproduction of the Archytas toolbox (paper §2.2): "a toolbox for
//! enabling LLM agents to interact with various tools in order to solve
//! tasks more effectively, following the ReAct (Reason & Action) paradigm.
//! It is similar in functionality to existing solutions like LangChain, but
//! focuses on providing a streamlined interface for tools."
//!
//! The pieces:
//! * [`tool`] — the `@tool()` equivalent: a [`tool::Tool`] carries a
//!   docstring, typed argument specs, and usage examples, all of which the
//!   reasoner reads "as natural language" to decide when to use it;
//! * [`template`] — the Jinja-style `{{variable}}` templating used inside
//!   tool bodies (Figure 2);
//! * [`react`] — the Thought → Action → Observation trace types;
//! * [`planner`] — the reasoner interface plus a deterministic keyword
//!   reasoner (substitution S3: the LLM brain is simulated by transparent
//!   intent scoring so every demo run is reproducible);
//! * [`agent`] — the loop that decomposes a user request into tool
//!   invocations and iterates until the task is complete.

pub mod agent;
pub mod error;
pub mod message;
pub mod planner;
pub mod react;
pub mod registry;
pub mod template;
pub mod tool;

pub use agent::Agent;
pub use error::{ArchytasError, ArchytasResult};
pub use message::{ChatMessage, Role};
pub use planner::{KeywordReasoner, PlannerDecision, Reasoner};
pub use react::{Action, ReactStep, ReactTrace};
pub use registry::ToolRegistry;
pub use template::render_template;
pub use tool::{ArgKind, ArgSpec, FnTool, Tool, ToolOutput, ToolSpec};
