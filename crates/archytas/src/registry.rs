//! Tool registry — the set of tools exposed to one agent.

use crate::error::{ArchytasError, ArchytasResult};
use crate::tool::{Tool, ToolSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Named collection of tools. Clones share the underlying tools.
#[derive(Clone, Default)]
pub struct ToolRegistry {
    tools: BTreeMap<String, Arc<dyn Tool>>,
}

impl ToolRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tool under its spec name (replacing any previous one).
    pub fn register(&mut self, tool: Arc<dyn Tool>) {
        self.tools.insert(tool.spec().name.clone(), tool);
    }

    pub fn get(&self, name: &str) -> ArchytasResult<Arc<dyn Tool>> {
        self.tools
            .get(name)
            .cloned()
            .ok_or_else(|| ArchytasError::UnknownTool(name.to_string()))
    }

    pub fn specs(&self) -> Vec<&ToolSpec> {
        self.tools.values().map(|t| t.spec()).collect()
    }

    pub fn names(&self) -> Vec<&str> {
        self.tools.keys().map(|s| s.as_str()).collect()
    }

    pub fn len(&self) -> usize {
        self.tools.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Render the "tool manual" a real LLM agent would receive as context.
    pub fn manual(&self) -> String {
        let mut s = String::new();
        for spec in self.specs() {
            s.push_str(&format!("## {}\n{}\n", spec.name, spec.docstring));
            if !spec.args.is_empty() {
                s.push_str("Args:\n");
                for a in &spec.args {
                    s.push_str(&format!(
                        "  - {}{}: {}\n",
                        a.name,
                        if a.required { "" } else { " (optional)" },
                        a.description
                    ));
                }
            }
            for ex in &spec.examples {
                s.push_str(&format!("Example: {ex}\n"));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{ArgKind, ArgSpec, FnTool, ToolArgs, ToolOutput};

    fn dummy(name: &str) -> Arc<dyn Tool> {
        Arc::new(FnTool::new(
            ToolSpec::new(name, format!("The {name} tool."))
                .with_arg(ArgSpec::new("x", ArgKind::Str, "input"))
                .with_example(format!("use {name} now")),
            |_: &ToolArgs| Ok(ToolOutput::text("ok")),
        ))
    }

    #[test]
    fn register_and_get() {
        let mut r = ToolRegistry::new();
        r.register(dummy("alpha"));
        r.register(dummy("beta"));
        assert_eq!(r.len(), 2);
        assert!(r.get("alpha").is_ok());
        assert!(matches!(r.get("gamma"), Err(ArchytasError::UnknownTool(_))));
        assert_eq!(r.names(), vec!["alpha", "beta"]);
    }

    #[test]
    fn replace_by_name() {
        let mut r = ToolRegistry::new();
        r.register(dummy("a"));
        r.register(dummy("a"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn manual_includes_docstrings_args_examples() {
        let mut r = ToolRegistry::new();
        r.register(dummy("create_schema"));
        let m = r.manual();
        assert!(m.contains("## create_schema"));
        assert!(m.contains("The create_schema tool."));
        assert!(m.contains("- x: input"));
        assert!(m.contains("Example: use create_schema now"));
    }

    #[test]
    fn empty_registry() {
        let r = ToolRegistry::new();
        assert!(r.is_empty());
        assert!(r.manual().is_empty());
    }
}
