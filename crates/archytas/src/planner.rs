//! Reasoners — the agent's "brain".
//!
//! Substitution **S3** from DESIGN.md: in the real system an LLM reads the
//! tool docstrings and decides, per ReAct, which tool to call next. Here
//! the [`Reasoner`] trait abstracts that decision, and
//! [`KeywordReasoner`] implements it deterministically: the user request is
//! split into clauses, each clause is scored against every tool's
//! name / docstring / examples (the exact text an LLM would attend to), and
//! arguments are slot-filled from quoted spans and numbers. PalimpChat
//! layers a domain-specific reasoner on top (see the `palimpchat` crate).

use crate::error::ArchytasResult;
use crate::react::ReactStep;
use crate::registry::ToolRegistry;
use crate::tool::{ArgKind, ToolArgs};
use serde_json::Value;

/// What the reasoner wants to do next.
#[derive(Clone, Debug, PartialEq)]
pub enum PlannerDecision {
    /// Invoke a tool.
    Act {
        thought: String,
        tool: String,
        args: ToolArgs,
    },
    /// Stop and answer the user.
    Finish { thought: String, answer: String },
}

/// The decision interface.
pub trait Reasoner: Send + Sync {
    fn decide(
        &self,
        goal: &str,
        registry: &ToolRegistry,
        history: &[ReactStep],
    ) -> ArchytasResult<PlannerDecision>;
}

/// Split a request into sequential task clauses — the "decompose a user
/// question into several tasks" behaviour of Figure 4.
pub fn split_clauses(goal: &str) -> Vec<String> {
    let mut clauses = vec![String::new()];
    let lowered = goal.to_string();
    let mut rest = lowered.as_str();
    let separators = ["; ", " and then ", ", then ", " then ", ". "];
    'outer: while !rest.is_empty() {
        let mut first: Option<(usize, &str)> = None;
        for sep in separators {
            if let Some(pos) = rest.find(sep) {
                if first.is_none_or(|(p, _)| pos < p) {
                    first = Some((pos, sep));
                }
            }
        }
        match first {
            Some((pos, sep)) => {
                clauses
                    .last_mut()
                    .expect("non-empty")
                    .push_str(&rest[..pos]);
                clauses.push(String::new());
                rest = &rest[pos + sep.len()..];
            }
            None => {
                clauses.last_mut().expect("non-empty").push_str(rest);
                break 'outer;
            }
        }
    }
    clauses
        .into_iter()
        .map(|c| c.trim().trim_end_matches('.').to_string())
        .filter(|c| !c.is_empty())
        .collect()
}

/// Words of a text, lowercased, len > 2.
fn words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() > 2)
        .map(|w| w.to_ascii_lowercase())
        .collect()
}

/// Score how well `clause` matches a tool's metadata, the way an LLM reads
/// docstrings: name tokens weigh most, examples next, docstring last.
pub fn score_tool(clause: &str, spec: &crate::tool::ToolSpec) -> f64 {
    let cw = words(clause);
    if cw.is_empty() {
        return 0.0;
    }
    let name_words = words(&spec.name.replace('_', " "));
    let doc_words = words(&spec.docstring);
    let example_words: Vec<String> = spec.examples.iter().flat_map(|e| words(e)).collect();
    let mut score = 0.0;
    for w in &cw {
        if name_words.contains(w) {
            score += 3.0;
        }
        if example_words.contains(w) {
            score += 2.0;
        }
        if doc_words.contains(w) {
            score += 1.0;
        }
    }
    score / cw.len() as f64
}

/// Extract double-quoted spans from a clause.
pub fn extract_quoted(clause: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = clause;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        match after.find('"') {
            Some(end) => {
                out.push(after[..end].to_string());
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    out
}

/// Extract integer literals from a clause.
pub fn extract_numbers(clause: &str) -> Vec<i64> {
    clause
        .split(|c: char| !c.is_ascii_digit() && c != '-')
        .filter_map(|t| t.parse::<i64>().ok())
        .collect()
}

/// Deterministic generic reasoner: one clause per step, best-scoring tool,
/// slot-filled args.
#[derive(Clone, Debug, Default)]
pub struct KeywordReasoner {
    /// Minimum score for a tool to be considered applicable.
    pub min_score: f64,
}

impl KeywordReasoner {
    pub fn new() -> Self {
        Self { min_score: 0.15 }
    }

    fn fill_args(clause: &str, spec: &crate::tool::ToolSpec) -> ToolArgs {
        let mut args = ToolArgs::new();
        let mut quoted = extract_quoted(clause).into_iter();
        let mut numbers = extract_numbers(clause).into_iter();
        for a in &spec.args {
            match a.kind {
                ArgKind::Str => {
                    if let Some(q) = quoted.next() {
                        args.insert(a.name.clone(), Value::String(q));
                    } else if a.required {
                        // Fall back to the whole clause for the first
                        // unfilled required string argument.
                        args.insert(a.name.clone(), Value::String(clause.to_string()));
                    }
                }
                ArgKind::Int => {
                    if let Some(n) = numbers.next() {
                        args.insert(a.name.clone(), Value::from(n));
                    }
                }
                ArgKind::Float => {
                    if let Some(n) = numbers.next() {
                        args.insert(a.name.clone(), Value::from(n as f64));
                    }
                }
                ArgKind::Bool => {}
                ArgKind::StrList => {
                    let items: Vec<Value> = quoted.by_ref().map(Value::String).collect();
                    if !items.is_empty() {
                        args.insert(a.name.clone(), Value::Array(items));
                    }
                }
            }
        }
        args
    }
}

impl Reasoner for KeywordReasoner {
    fn decide(
        &self,
        goal: &str,
        registry: &ToolRegistry,
        history: &[ReactStep],
    ) -> ArchytasResult<PlannerDecision> {
        let clauses = split_clauses(goal);
        let done = history.iter().filter(|s| s.action.is_some()).count();
        if done >= clauses.len() {
            let summary = history
                .iter()
                .filter(|s| s.action.is_some() && !s.failed)
                .map(|s| s.observation.as_str())
                .collect::<Vec<_>>()
                .join(" | ");
            return Ok(PlannerDecision::Finish {
                thought: "All tasks in the request have been handled.".into(),
                answer: if summary.is_empty() {
                    "Nothing to do.".into()
                } else {
                    summary
                },
            });
        }
        let clause = &clauses[done];
        let mut best: Option<(f64, &crate::tool::ToolSpec)> = None;
        for spec in registry.specs() {
            let s = score_tool(clause, spec);
            if best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, spec));
            }
        }
        match best {
            Some((score, spec)) if score >= self.min_score => Ok(PlannerDecision::Act {
                thought: format!(
                    "Task {}/{}: {:?} looks like a job for the {} tool (score {score:.2}).",
                    done + 1,
                    clauses.len(),
                    clause,
                    spec.name
                ),
                tool: spec.name.clone(),
                args: Self::fill_args(clause, spec),
            }),
            _ => Ok(PlannerDecision::Finish {
                thought: format!("No registered tool matches {clause:?}."),
                answer: format!(
                    "I don't have a tool for {clause:?}; available tools: {}.",
                    registry.names().join(", ")
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{ArgSpec, FnTool, ToolOutput, ToolSpec};
    use std::sync::Arc;

    #[test]
    fn clause_splitting() {
        assert_eq!(
            split_clauses("load the papers and then filter for cancer; extract datasets"),
            vec!["load the papers", "filter for cancer", "extract datasets"]
        );
        assert_eq!(split_clauses("single task"), vec!["single task"]);
        assert_eq!(split_clauses(""), Vec::<String>::new());
        assert_eq!(split_clauses("first. second."), vec!["first", "second"]);
    }

    #[test]
    fn quoted_and_numbers() {
        assert_eq!(
            extract_quoted(r#"filter for "colorectal cancer" and "tumors""#),
            vec!["colorectal cancer", "tumors"]
        );
        assert_eq!(extract_quoted("no quotes"), Vec::<String>::new());
        assert_eq!(extract_numbers("keep the top 5 of 100"), vec![5, 100]);
    }

    fn registry() -> ToolRegistry {
        let mut r = ToolRegistry::new();
        r.register(Arc::new(FnTool::new(
            ToolSpec::new(
                "load_dataset",
                "Load an input dataset of files for processing.",
            )
            .with_arg(ArgSpec::new("name", ArgKind::Str, "Dataset name"))
            .with_example("load the papers from a folder"),
            |a: &ToolArgs| {
                Ok(ToolOutput::text(format!(
                    "loaded {}",
                    a["name"].as_str().unwrap()
                )))
            },
        )));
        r.register(Arc::new(FnTool::new(
            ToolSpec::new(
                "filter_records",
                "Filter records with a natural language predicate.",
            )
            .with_arg(ArgSpec::new("predicate", ArgKind::Str, "The condition"))
            .with_example("filter for papers about cancer"),
            |_: &ToolArgs| Ok(ToolOutput::text("filtered")),
        )));
        r
    }

    #[test]
    fn scores_rank_matching_tool_higher() {
        let r = registry();
        let load = r.get("load_dataset").unwrap();
        let filt = r.get("filter_records").unwrap();
        let clause = "load the dataset of papers";
        assert!(score_tool(clause, load.spec()) > score_tool(clause, filt.spec()));
        let clause2 = "filter for papers about colorectal cancer";
        assert!(score_tool(clause2, filt.spec()) > score_tool(clause2, load.spec()));
    }

    #[test]
    fn decide_steps_through_clauses() {
        let r = registry();
        let reasoner = KeywordReasoner::new();
        let goal =
            r#"load the dataset "sigmod-demo" and then filter for "colorectal cancer" papers"#;
        let d1 = reasoner.decide(goal, &r, &[]).unwrap();
        let (tool1, args1) = match d1 {
            PlannerDecision::Act { tool, args, .. } => (tool, args),
            other => panic!("expected Act, got {other:?}"),
        };
        assert_eq!(tool1, "load_dataset");
        assert_eq!(args1["name"], "sigmod-demo");

        // Simulate the first step done.
        let step = ReactStep {
            thought: String::new(),
            action: Some(crate::react::Action {
                tool: tool1,
                args: args1,
            }),
            observation: "loaded sigmod-demo".into(),
            data: Value::Null,
            failed: false,
        };
        let d2 = reasoner
            .decide(goal, &r, std::slice::from_ref(&step))
            .unwrap();
        match d2 {
            PlannerDecision::Act { tool, args, .. } => {
                assert_eq!(tool, "filter_records");
                assert_eq!(args["predicate"], "colorectal cancer");
            }
            other => panic!("expected Act, got {other:?}"),
        }

        // After both clauses: finish with a summary.
        let step2 = ReactStep {
            observation: "filtered".into(),
            ..step.clone()
        };
        let d3 = reasoner.decide(goal, &r, &[step, step2]).unwrap();
        match d3 {
            PlannerDecision::Finish { answer, .. } => {
                assert!(answer.contains("loaded sigmod-demo"));
            }
            other => panic!("expected Finish, got {other:?}"),
        }
    }

    #[test]
    fn unmatched_clause_finishes_gracefully() {
        let r = registry();
        let reasoner = KeywordReasoner::new();
        let d = reasoner
            .decide("perform quantum entanglement", &r, &[])
            .unwrap();
        match d {
            PlannerDecision::Finish { answer, .. } => {
                assert!(answer.contains("load_dataset"));
            }
            other => panic!("expected Finish, got {other:?}"),
        }
    }

    #[test]
    fn empty_goal_finishes() {
        let r = registry();
        let d = KeywordReasoner::new().decide("", &r, &[]).unwrap();
        assert!(matches!(d, PlannerDecision::Finish { .. }));
    }
}
