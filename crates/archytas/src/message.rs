//! Chat messages — the conversation state an agent maintains.

use serde::{Deserialize, Serialize};

/// Who authored a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    System,
    User,
    Assistant,
    /// A tool observation fed back to the agent.
    Tool,
}

/// One conversation message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChatMessage {
    pub role: Role,
    pub content: String,
}

impl ChatMessage {
    pub fn system(content: impl Into<String>) -> Self {
        Self {
            role: Role::System,
            content: content.into(),
        }
    }

    pub fn user(content: impl Into<String>) -> Self {
        Self {
            role: Role::User,
            content: content.into(),
        }
    }

    pub fn assistant(content: impl Into<String>) -> Self {
        Self {
            role: Role::Assistant,
            content: content.into(),
        }
    }

    pub fn tool(content: impl Into<String>) -> Self {
        Self {
            role: Role::Tool,
            content: content.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_roles() {
        assert_eq!(ChatMessage::system("s").role, Role::System);
        assert_eq!(ChatMessage::user("u").role, Role::User);
        assert_eq!(ChatMessage::assistant("a").role, Role::Assistant);
        assert_eq!(ChatMessage::tool("t").role, Role::Tool);
    }

    #[test]
    fn serializes() {
        let m = ChatMessage::user("hello");
        let j = serde_json::to_string(&m).unwrap();
        assert!(j.contains("hello"));
        let back: ChatMessage = serde_json::from_str(&j).unwrap();
        assert_eq!(back, m);
    }
}
