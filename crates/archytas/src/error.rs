//! Error types for the agent framework.

use thiserror::Error;

/// Framework errors.
#[derive(Clone, Debug, Error, PartialEq, Eq)]
pub enum ArchytasError {
    #[error("unknown tool: {0}")]
    UnknownTool(String),
    #[error("tool {tool}: bad arguments: {reason}")]
    BadArguments { tool: String, reason: String },
    #[error("tool {tool} failed: {reason}")]
    ToolFailed { tool: String, reason: String },
    #[error("template error: {0}")]
    Template(String),
    #[error("agent exceeded {0} reasoning steps")]
    MaxStepsExceeded(usize),
    #[error("reasoner error: {0}")]
    Reasoner(String),
}

pub type ArchytasResult<T> = Result<T, ArchytasError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert_eq!(
            ArchytasError::UnknownTool("x".into()).to_string(),
            "unknown tool: x"
        );
        assert!(ArchytasError::BadArguments {
            tool: "t".into(),
            reason: "r".into()
        }
        .to_string()
        .contains("bad arguments"));
        assert!(ArchytasError::MaxStepsExceeded(7).to_string().contains('7'));
    }
}
