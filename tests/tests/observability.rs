//! Integration: the unified pz-obs trace spans every layer of one chat
//! session — chat turn → agent step → optimizer → executor operator →
//! LLM call — on the shared virtual clock, and its totals reconcile with
//! the older telemetry (ExecutionStats, UsageLedger).

use palimpchat::PalimpChat;
use pz_core::prelude::*;
use pz_obs::{Layer, TraceSnapshot};
use std::sync::Arc;

/// The §3 demonstration dialogue: load, build the pipeline, run it.
fn run_dialogue() -> PalimpChat {
    let mut chat = PalimpChat::new();
    chat.handle("Please load the dataset of scientific papers from my folder")
        .unwrap();
    chat.handle(
        "I'm interested in papers that are about colorectal cancer, and for these \
         papers, extract whatever public dataset is used by the study",
    )
    .unwrap();
    chat.handle("run the pipeline with maximum quality")
        .unwrap();
    chat
}

#[test]
fn one_dialogue_produces_a_trace_spanning_every_layer() {
    let chat = run_dialogue();
    let snap = chat.tracer().snapshot();

    // One root span per chat turn, nothing floating outside a turn.
    let roots = snap.roots();
    assert_eq!(roots.len(), 3, "{}", pz_obs::render_tree(&snap));
    assert!(roots.iter().all(|r| r.layer == Layer::Chat));
    assert_eq!(roots[0].name, "turn:1");
    assert_eq!(roots[2].name, "turn:3");
    for s in &snap.spans {
        assert!(
            roots.iter().any(|r| r.id.contains(&s.id)),
            "span {} ({}) is outside every chat turn",
            s.id,
            s.name
        );
    }

    // Every layer shows up.
    for layer in [
        Layer::Chat,
        Layer::Agent,
        Layer::Optimizer,
        Layer::Executor,
        Layer::Llm,
    ] {
        assert!(
            !snap.spans_in_layer(layer).is_empty(),
            "no spans in layer {layer:?}"
        );
    }

    // The execution turn nests agent → optimizer/executor → LLM.
    let turn3 = roots[2];
    let under_turn3 = |layer: Layer| {
        snap.spans_in_layer(layer)
            .into_iter()
            .filter(|s| turn3.id.contains(&s.id))
            .count()
    };
    assert!(under_turn3(Layer::Agent) >= 3, "react + act + observe");
    assert_eq!(under_turn3(Layer::Optimizer), 1, "one optimize span");
    assert!(under_turn3(Layer::Executor) >= 3, "plan span + operators");
    assert!(under_turn3(Layer::Llm) > 0, "real model calls");

    // All spans closed, timestamps monotone within each span.
    for s in &snap.spans {
        let end = s.end_us.expect("span left open");
        assert!(end >= s.start_us, "span {} ends before it starts", s.name);
    }
}

#[test]
fn trace_totals_reconcile_with_stats_and_ledger() {
    let chat = run_dialogue();
    let snap = chat.tracer().snapshot();
    let (stats, ledger) = {
        let state = chat.session().lock();
        (
            state.last_outcome.as_ref().unwrap().stats.clone(),
            state.ctx.ledger.clone(),
        )
    };

    // Every ledger-counted request has exactly one LLM span.
    let llm_spans = snap.spans_in_layer(Layer::Llm);
    assert_eq!(llm_spans.len(), ledger.total_requests());

    // LLM span cost attributes sum to the ledger's dollars.
    let span_cost = snap.attr_sum(Layer::Llm, "cost_usd");
    assert!(
        (span_cost - ledger.total_cost_usd()).abs() < 1e-4,
        "spans ${span_cost} vs ledger ${}",
        ledger.total_cost_usd()
    );

    // Executor operator spans reconcile with the Figure-5 stats table.
    let op_spans: Vec<_> = snap
        .spans_in_layer(Layer::Executor)
        .into_iter()
        .filter(|s| s.name.starts_with("op:"))
        .collect();
    assert_eq!(op_spans.len(), stats.operators.len());
    let span_calls: f64 = op_spans
        .iter()
        .filter_map(|s| s.attrs.get("llm_calls"))
        .filter_map(|v| v.parse::<f64>().ok())
        .sum();
    assert_eq!(span_calls as usize, stats.total_llm_calls);
    let span_op_cost: f64 = op_spans
        .iter()
        .filter_map(|s| s.attrs.get("cost_usd"))
        .filter_map(|v| v.parse::<f64>().ok())
        .sum();
    assert!((span_op_cost - stats.total_cost_usd).abs() < 1e-4);

    // The optimizer's counters match its own report.
    let outcome_report = {
        let state = chat.session().lock();
        state.last_outcome.as_ref().unwrap().report.clone()
    };
    assert_eq!(
        snap.counters["optimizer.plans_considered"],
        outcome_report.plans_considered as u64
    );
    assert_eq!(
        snap.counters["optimizer.pareto_pruned"],
        (outcome_report.plans_considered - outcome_report.pareto_size) as u64
    );

    // Trace timestamps live on the same virtual clock as the ledger's
    // latency accounting: the last span ends when the clock stopped.
    let max_end = snap.spans.iter().filter_map(|s| s.end_us).max().unwrap();
    assert_eq!(max_end, chat.tracer().now_micros());
}

#[test]
fn streaming_trace_reconciles_with_stats_and_ledger() {
    // Same reconciliation contract as materializing mode, but with every
    // operator running as a concurrent stage: per-stage meters must
    // attribute exactly the ledger's calls/dollars, and all spans must
    // stay under the plan span on the shared virtual clock.
    let ctx = PzContext::simulated();
    let (docs, _) = pz_datagen::science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    let clinical = Schema::new(
        "ClinicalData",
        "datasets",
        vec![
            FieldDef::text("name", "The dataset name"),
            FieldDef::text("url", "The public URL of the dataset"),
        ],
    )
    .unwrap();
    let plan = Dataset::source("sigmod-demo")
        .filter("The papers are about colorectal cancer")
        .convert(clinical, Cardinality::OneToMany, "extract datasets")
        .build()
        .unwrap();
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::streaming(),
    )
    .unwrap();
    let snap = ctx.tracer.snapshot();
    let stats = &outcome.stats;

    // Every billed request has exactly one LLM span, even though the
    // calls came from concurrent stage threads.
    let llm_spans = snap.spans_in_layer(Layer::Llm);
    assert_eq!(llm_spans.len(), ctx.ledger.total_requests());
    let span_cost = snap.attr_sum(Layer::Llm, "cost_usd");
    assert!(
        (span_cost - ctx.ledger.total_cost_usd()).abs() < 1e-4,
        "spans ${span_cost} vs ledger ${}",
        ctx.ledger.total_cost_usd()
    );

    // One op span per operator; their attribute totals match the stats
    // table and the ledger.
    let op_spans: Vec<_> = snap
        .spans_in_layer(Layer::Executor)
        .into_iter()
        .filter(|s| s.name.starts_with("op:"))
        .collect();
    assert_eq!(op_spans.len(), stats.operators.len());
    let attr_sum_of = |key: &str| -> f64 {
        op_spans
            .iter()
            .filter_map(|s| s.attrs.get(key))
            .filter_map(|v| v.parse::<f64>().ok())
            .sum()
    };
    assert_eq!(attr_sum_of("llm_calls") as usize, stats.total_llm_calls);
    assert!((attr_sum_of("cost_usd") - stats.total_cost_usd).abs() < 1e-4);
    assert_eq!(stats.total_llm_calls, ctx.ledger.total_requests());
    assert!((stats.total_cost_usd - ctx.ledger.total_cost_usd()).abs() < 1e-9);

    // Attributed time reflects overlap: stage busy times sum to at least
    // the pipelined total, which is less than the serial sum.
    let busy_sum: f64 = stats.operators.iter().map(|o| o.time_secs).sum();
    assert!(stats.total_time_secs <= busy_sum + 1e-9);
    assert!(stats.total_time_secs > 0.0);

    // All op spans nest under the (streaming) plan span, every span is
    // closed, and the trace ends when the virtual clock stopped.
    let plan_span = snap
        .spans_in_layer(Layer::Executor)
        .into_iter()
        .find(|s| s.name == "execute_plan")
        .expect("plan span");
    assert_eq!(
        plan_span.attrs.get("mode").map(String::as_str),
        Some("streaming")
    );
    for op in &op_spans {
        assert!(
            plan_span.id.contains(&op.id),
            "op span {} escaped the plan span",
            op.name
        );
    }
    for s in &snap.spans {
        let end = s.end_us.expect("span left open");
        assert!(end >= s.start_us);
    }
    let max_end = snap.spans.iter().filter_map(|s| s.end_us).max().unwrap();
    assert_eq!(max_end, ctx.tracer.now_micros());
}

#[test]
fn cached_rerun_hits_land_on_tracer_and_ledger_not_llm_spans() {
    let ctx = PzContext::simulated().with_cache();
    let (docs, _) = pz_datagen::science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    let plan = Dataset::source("sigmod-demo")
        .filter("The papers are about colorectal cancer")
        .build()
        .unwrap();

    // MaxQuality routes the filter to completion calls (MinCost would pick
    // the embedding filter, whose cache emits batched `embed_cache` events).
    execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let misses_after_first = ctx.ledger.total_cache_misses();
    assert!(misses_after_first > 0);
    assert_eq!(ctx.ledger.total_cache_hits(), 0);

    execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let snap = ctx.tracer.snapshot();

    // Second run was served from cache: hits on the ledger…
    assert_eq!(ctx.ledger.total_cache_hits(), misses_after_first);
    // …as cache_hit events on the trace…
    let hit_events = snap.events.iter().filter(|e| e.name == "cache_hit").count();
    assert_eq!(hit_events, ctx.ledger.total_cache_hits());
    // …and NO extra LLM spans (hits never reach the provider).
    assert_eq!(
        snap.spans_in_layer(Layer::Llm).len(),
        ctx.ledger.total_requests()
    );
}

#[test]
fn trace_exports_as_jsonl_and_round_trips() {
    let chat = run_dialogue();
    let snap = chat.tracer().snapshot();
    let jsonl = snap.to_jsonl();

    // Every line is standalone JSON.
    assert!(jsonl.lines().count() >= snap.spans.len());
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert!(v.is_object() || v.is_string(), "{line}");
    }

    // Lossless round trip.
    let back = TraceSnapshot::from_jsonl(&jsonl).unwrap();
    assert_eq!(back, snap);

    // The re-imported trace supports the same queries.
    assert_eq!(back.roots().len(), 3);
    assert_eq!(
        back.spans_in_layer(Layer::Llm).len(),
        snap.spans_in_layer(Layer::Llm).len()
    );
}

#[test]
fn render_tree_shows_the_dialogue_structure() {
    let chat = run_dialogue();
    let tree = pz_obs::render_tree(&chat.tracer().snapshot());
    assert!(tree.contains("turn:1"), "{tree}");
    assert!(tree.contains("act:execute_pipeline"), "{tree}");
    assert!(tree.contains("optimize"), "{tree}");
    assert!(tree.contains("execute_plan"), "{tree}");
    assert!(tree.contains("[llm] complete"), "{tree}");
    assert!(tree.contains("counters:"), "{tree}");
}
