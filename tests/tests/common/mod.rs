//! Shared fixtures for the integration-test suites.
//!
//! `properties.rs`, `adaptive.rs`, and `incremental.rs` all need the same
//! things: a simulated context over a registered corpus, randomized
//! operator chains, and multiset/reconciliation assertions. They live here
//! once so a new suite cannot fork its own slightly-different generator —
//! and so seeds stay private to each proptest run (the suites share
//! *generators*, never RNG state; proptest owns the seeds).
//!
//! Compiled per test binary via `mod common;` — not every suite uses every
//! helper, hence the file-level `dead_code` allow.
#![allow(dead_code)]

use proptest::prelude::*;
use pz_core::prelude::*;
use pz_llm::protocol::Effort;
use pz_llm::{FaultPlan, SimConfig};
use std::sync::Arc;

/// Field-content multiset key: record ids are excluded (different
/// execution modes allocate ids differently), field maps are ordered, so
/// the JSON is a stable content fingerprint.
pub fn multiset(records: &[DataRecord]) -> Vec<String> {
    let mut keys: Vec<String> = records
        .iter()
        .map(|r| serde_json::to_string(&r.to_json()).unwrap())
        .collect();
    keys.sort();
    keys
}

/// Sorted `name` fields — the usual comparison key for extraction outputs.
pub fn sorted_names(records: &[DataRecord]) -> Vec<String> {
    let mut v: Vec<String> = records
        .iter()
        .map(|r| r.get("name").unwrap().as_display())
        .collect();
    v.sort();
    v
}

/// Every dollar and every call the ledger saw must be attributed to
/// exactly one operator in the stats.
pub fn assert_reconciled(ctx: &PzContext, stats: &ExecutionStats) {
    let op_cost: f64 = stats.operators.iter().map(|o| o.cost_usd).sum();
    assert!(
        (op_cost - ctx.ledger.total_cost_usd()).abs() < 1e-9,
        "operator cost {} vs ledger {}",
        op_cost,
        ctx.ledger.total_cost_usd()
    );
    let op_calls: usize = stats.operators.iter().map(|o| o.llm_calls).sum();
    assert_eq!(op_calls, ctx.ledger.total_requests());
}

/// The demo extraction target (paper §3: name + URL of public datasets).
pub fn clinical_schema() -> Schema {
    Schema::new(
        "ClinicalData",
        "datasets",
        vec![
            FieldDef::text("name", "The dataset name"),
            FieldDef::text("url", "The public URL of the dataset"),
        ],
    )
    .unwrap()
}

/// Simulated context with the fixed 11-paper demo corpus registered as
/// `sigmod-demo`, under a scripted fault plan.
pub fn ctx_with(plan: FaultPlan, seed: u64) -> PzContext {
    let ctx = PzContext::simulated_with(SimConfig {
        seed,
        fault_plan: plan,
        ..Default::default()
    });
    let (docs, _) = pz_datagen::science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    ctx
}

// ---------------------------------------------------------------------------
// Randomized plans and corpora for differential testing.
// ---------------------------------------------------------------------------

pub const PREDICATES: [&str; 3] = [
    "the document is about cancer research",
    "the document mentions a public dataset",
    "the document describes a modern home",
];

pub const CLASSIFY_LABELS: [&str; 3] = ["cancer", "dataset", "other"];

/// One step of a randomized plan tail.
#[derive(Clone, Debug)]
pub enum Step {
    Filter(usize),
    Sort(bool),
    Limit(usize),
    Project,
    Distinct,
    /// LLM categorization: adds a label field, keeps everything else —
    /// safe anywhere in the chain.
    Classify,
}

/// The original differential step mix (relational tail + LLM filters).
pub fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0u8..5, 0usize..12, any::<bool>()), 0..4).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, n, b)| step_of(kind, n, b))
            .collect()
    })
}

/// Step mix extended with `Classify`, for suites exercising per-operator
/// memo rules; kept separate so `properties.rs` coverage is unchanged.
pub fn arb_steps_llm() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0u8..6, 0usize..12, any::<bool>()), 0..4).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, n, b)| step_of(kind, n, b))
            .collect()
    })
}

fn step_of(kind: u8, n: usize, b: bool) -> Step {
    match kind {
        0 => Step::Filter(n % PREDICATES.len()),
        1 => Step::Sort(b),
        2 => Step::Limit(n),
        3 => Step::Project,
        4 => Step::Distinct,
        _ => Step::Classify,
    }
}

pub fn arb_corpus() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec("[a-f ]{0,40}", 1..9).prop_map(|contents| {
        contents
            .into_iter()
            .enumerate()
            .map(|(i, c)| (format!("doc-{i:03}.pdf"), format!("Document {i}. {c}")))
            .collect()
    })
}

/// Lower a step chain onto `dataset` as a physical plan.
pub fn build_plan(dataset: &str, steps: &[Step]) -> PhysicalPlan {
    let mut ops = vec![PhysicalOp::Scan {
        dataset: dataset.into(),
    }];
    for s in steps {
        ops.push(match s {
            Step::Filter(i) => PhysicalOp::LlmFilter {
                predicate: PREDICATES[*i].into(),
                model: "gpt-4o-mini".into(),
                effort: Effort::Standard,
            },
            Step::Sort(desc) => PhysicalOp::Sort {
                field: "filename".into(),
                descending: *desc,
            },
            Step::Limit(n) => PhysicalOp::Limit { n: *n },
            Step::Project => PhysicalOp::Project {
                fields: vec!["filename".into()],
            },
            Step::Distinct => PhysicalOp::Distinct {
                fields: vec!["filename".into()],
            },
            Step::Classify => PhysicalOp::LlmClassify {
                labels: CLASSIFY_LABELS.iter().map(|s| s.to_string()).collect(),
                output_field: "label".into(),
                model: "gpt-4o-mini".into(),
                effort: Effort::Standard,
            },
        });
    }
    PhysicalPlan { ops }
}

/// A tail Limit legitimately lets streaming (and incremental) skip
/// upstream LLM calls, so exact cost equality only binds without one.
pub fn has_early_exit(steps: &[Step]) -> bool {
    steps.iter().any(|s| matches!(s, Step::Limit(_)))
}

/// Fresh simulated context with `corpus` registered under `dataset`.
pub fn fresh_ctx(dataset: &str, corpus: &[(String, String)]) -> PzContext {
    let ctx = PzContext::simulated();
    ctx.registry.register(Arc::new(MemorySource::new(
        dataset,
        Schema::pdf_file(),
        corpus.to_vec(),
    )));
    ctx
}
