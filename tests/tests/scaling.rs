//! Integration: the out-of-core data plane (`exec/run.rs` chunked drive,
//! `ops/relational.rs` spill sort, `ops/join.rs` batched build side,
//! `pz-vector` HNSW tier).
//!
//! The headline guarantee, test-enforced: chunking is a memory knob, not a
//! semantics knob. For any plan and any chunk size, the chunked drive must
//! produce the same records, the same ledger bill, and the same stats as
//! the whole-corpus drive — and the spill operators must produce
//! byte-identical output at any memory budget. The HNSW tier must stay
//! deterministic under a fixed seed and keep recall >= 0.9 against an
//! exact flat scan.

mod common;

use common::{arb_corpus, arb_steps, assert_reconciled, build_plan, multiset};
use proptest::prelude::*;
use pz_core::exec::execute_plan;
use pz_core::prelude::*;
use pz_vector::{FlatIndex, HnswConfig, HnswIndex, Metric, VectorStore};

const DATASET: &str = "scale";

/// The fixed chunk-size matrix from the differential plan: degenerate
/// (1), prime and non-divisor of typical corpus sizes (7), larger than
/// small corpora (64), and whole-corpus (0 = chunking off).
const CHUNK_SIZES: [usize; 4] = [1, 7, 64, 0];

fn record_keys(records: &[DataRecord]) -> Vec<String> {
    records.iter().map(|r| format!("{r:?}")).collect()
}

// ---------------------------------------------------------------------------
// Differential: chunked materializing vs whole-corpus materializing.
// ---------------------------------------------------------------------------

proptest! {
    /// For any corpus, any plan tail, and any chunk size, the chunked
    /// drive is bytewise-invisible at parallelism 1: identical records
    /// (ids included), identical output multiset, identical ledger bill.
    #[test]
    fn chunked_scan_equals_whole_corpus(
        corpus in arb_corpus(),
        steps in arb_steps(),
        chunk in 1usize..12,
    ) {
        let plan = build_plan(DATASET, &steps);
        let ctx_whole = common::fresh_ctx(DATASET, &corpus);
        let (whole, stats_whole) =
            execute_plan(&ctx_whole, &plan, ExecutionConfig::sequential()).unwrap();
        let ctx_chunked = common::fresh_ctx(DATASET, &corpus);
        let (chunked, stats_chunked) = execute_plan(
            &ctx_chunked,
            &plan,
            ExecutionConfig::sequential().with_scan_chunk_size(chunk),
        )
        .unwrap();
        prop_assert_eq!(record_keys(&whole), record_keys(&chunked));
        let (whole_cost, chunked_cost) = (
            ctx_whole.ledger.total_cost_usd(),
            ctx_chunked.ledger.total_cost_usd(),
        );
        prop_assert!(
            (whole_cost - chunked_cost).abs() < 1e-9,
            "whole ${} vs chunked ${}", whole_cost, chunked_cost
        );
        prop_assert_eq!(stats_whole.total_llm_calls, stats_chunked.total_llm_calls);
        assert_reconciled(&ctx_chunked, &stats_chunked);
    }

    /// Spilling the sort to temp-file runs at any budget is bytewise
    /// invisible: same records (stability included) as the in-memory sort.
    #[test]
    fn spill_sort_equals_in_memory(
        corpus in arb_corpus(),
        budget in 1usize..10,
        descending in any::<bool>(),
    ) {
        let plan = PhysicalPlan {
            ops: vec![
                PhysicalOp::Scan { dataset: DATASET.into() },
                PhysicalOp::Sort { field: "filename".into(), descending },
            ],
        };
        let ctx_mem = common::fresh_ctx(DATASET, &corpus);
        let (in_memory, _) =
            execute_plan(&ctx_mem, &plan, ExecutionConfig::sequential()).unwrap();
        let ctx_spill = common::fresh_ctx(DATASET, &corpus);
        let (spilled, _) = execute_plan(
            &ctx_spill,
            &plan,
            ExecutionConfig::sequential().with_spill_budget(budget),
        )
        .unwrap();
        prop_assert_eq!(record_keys(&in_memory), record_keys(&spilled));
    }
}

// ---------------------------------------------------------------------------
// Fixed matrix: chunk sizes x execution modes x parallelism.
// ---------------------------------------------------------------------------

/// ~40-document corpus: bigger than every finite chunk size in the matrix
/// so each run crosses several chunk boundaries.
fn matrix_corpus() -> Vec<(String, String)> {
    (0..40)
        .map(|i| {
            (
                format!("doc-{i:03}.pdf"),
                format!(
                    "Document {i}. {}",
                    if i % 3 == 0 {
                        "cancer cohort"
                    } else {
                        "modern home"
                    }
                ),
            )
        })
        .collect()
}

fn matrix_plan() -> PhysicalPlan {
    PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: DATASET.into(),
            },
            PhysicalOp::LlmFilter {
                predicate: "the document discusses cancer".into(),
                model: "gpt-4o-mini".into(),
                effort: pz_llm::protocol::Effort::Standard,
            },
            PhysicalOp::LlmClassify {
                labels: vec!["cancer".into(), "dataset".into(), "other".into()],
                output_field: "label".into(),
                model: "gpt-4o-mini".into(),
                effort: pz_llm::protocol::Effort::Standard,
            },
        ],
    }
}

/// Chunk sizes {1, 7, 64, whole} x parallelism {1, 4}, materializing:
/// every cell agrees with the whole-corpus sequential baseline on the
/// output multiset and the ledger bill. (Parallel workers race derived-id
/// assignment, so the comparison is content, not ids.)
#[test]
fn chunk_matrix_materializing() {
    let corpus = matrix_corpus();
    let plan = matrix_plan();
    let ctx = common::fresh_ctx(DATASET, &corpus);
    let (baseline, _) = execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap();
    let (base_keys, base_cost) = (multiset(&baseline), ctx.ledger.total_cost_usd());
    for chunk in CHUNK_SIZES {
        for workers in [1usize, 4] {
            let ctx = common::fresh_ctx(DATASET, &corpus);
            let config = ExecutionConfig::parallel(workers).with_scan_chunk_size(chunk);
            let (records, stats) = execute_plan(&ctx, &plan, config).unwrap();
            assert_eq!(
                multiset(&records),
                base_keys,
                "multiset diverged at chunk={chunk} workers={workers}"
            );
            let cost = ctx.ledger.total_cost_usd();
            assert!(
                (cost - base_cost).abs() < 1e-9,
                "cost diverged at chunk={chunk} workers={workers}: ${base_cost} vs ${cost}"
            );
            assert_reconciled(&ctx, &stats);
        }
    }
}

/// The same matrix against the streaming executor: chunked materializing
/// and streaming must agree on the output multiset and the bill (the plan
/// has no early-exit operator, so exact cost equality binds).
#[test]
fn chunk_matrix_agrees_with_streaming() {
    let corpus = matrix_corpus();
    let plan = matrix_plan();
    let ctx = common::fresh_ctx(DATASET, &corpus);
    let (baseline, _) = execute_plan(
        &ctx,
        &plan,
        ExecutionConfig::sequential().with_scan_chunk_size(7),
    )
    .unwrap();
    let (base_keys, base_cost) = (multiset(&baseline), ctx.ledger.total_cost_usd());
    for batch in [1usize, 7, 64] {
        for workers in [1usize, 4] {
            let ctx = common::fresh_ctx(DATASET, &corpus);
            let config = ExecutionConfig::streaming_with(2, batch).with_parallelism(workers);
            let (records, _) = execute_plan(&ctx, &plan, config).unwrap();
            assert_eq!(
                multiset(&records),
                base_keys,
                "streaming multiset diverged at batch={batch} workers={workers}"
            );
            let cost = ctx.ledger.total_cost_usd();
            assert!(
                (cost - base_cost).abs() < 1e-9,
                "streaming cost diverged at batch={batch} workers={workers}"
            );
        }
    }
}

/// Chunking composes with spilling: a chunked scan into a budgeted sort
/// and a tail limit still matches the all-in-memory whole-corpus run
/// bytewise (sequential, so ids line up too).
#[test]
fn chunked_scan_with_spill_sort_is_bytewise_identical() {
    let corpus = matrix_corpus();
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: DATASET.into(),
            },
            PhysicalOp::Sort {
                field: "filename".into(),
                descending: true,
            },
            PhysicalOp::Limit { n: 5 },
        ],
    };
    let ctx = common::fresh_ctx(DATASET, &corpus);
    let (baseline, _) = execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap();
    for chunk in [1usize, 7, 64] {
        for budget in [1usize, 3, 8] {
            let ctx = common::fresh_ctx(DATASET, &corpus);
            let config = ExecutionConfig::sequential()
                .with_scan_chunk_size(chunk)
                .with_spill_budget(budget);
            let (records, _) = execute_plan(&ctx, &plan, config).unwrap();
            assert_eq!(
                record_keys(&baseline),
                record_keys(&records),
                "diverged at chunk={chunk} budget={budget}"
            );
        }
    }
}

/// The chunked drive keeps O(chunk + output) records resident while the
/// whole-corpus drive holds the full corpus; the stats gauge must show it.
#[test]
fn chunked_scan_caps_resident_records() {
    let corpus = matrix_corpus();
    let plan = matrix_plan();
    let ctx = common::fresh_ctx(DATASET, &corpus);
    let (_, whole) = execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap();
    assert_eq!(whole.peak_resident_records, corpus.len());
    let ctx = common::fresh_ctx(DATASET, &corpus);
    let (records, chunked) = execute_plan(
        &ctx,
        &plan,
        ExecutionConfig::sequential().with_scan_chunk_size(4),
    )
    .unwrap();
    assert!(
        chunked.peak_resident_records <= records.len() + 2 * 4,
        "chunked drive held {} records resident (output {}, chunk 4)",
        chunked.peak_resident_records,
        records.len()
    );
    assert!(chunked.peak_resident_records < whole.peak_resident_records);
}

// ---------------------------------------------------------------------------
// HNSW: recall, determinism, and size-based routing.
// ---------------------------------------------------------------------------

/// Seeded pseudo-random unit-cube vector; pure function of (stream, i).
fn vec_at(stream: u64, i: usize, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|d| {
            let mut z =
                stream.wrapping_add(((i * dim + d) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z >> 11) as f64 / (1u64 << 53) as f64) as f32
        })
        .collect()
}

/// HNSW recall@10 vs an exact flat scan stays >= 0.9 on a 4k corpus.
#[test]
fn hnsw_recall_against_flat_ground_truth() {
    const N: usize = 4096;
    const DIM: usize = 16;
    const K: usize = 10;
    let mut hnsw = HnswIndex::new(DIM, Metric::Cosine, HnswConfig::default());
    let mut flat = FlatIndex::new(DIM, Metric::Cosine);
    for i in 0..N {
        let v = vec_at(3, i, DIM);
        hnsw.add(&v);
        flat.add(&v);
    }
    let mut overlap = 0usize;
    let queries = 64;
    for q in 0..queries {
        let query = vec_at(99, q, DIM);
        let truth: std::collections::HashSet<_> =
            flat.search(&query, K).into_iter().map(|s| s.id).collect();
        overlap += hnsw
            .search(&query, K)
            .iter()
            .filter(|s| truth.contains(&s.id))
            .count();
    }
    let recall = overlap as f64 / (queries * K) as f64;
    assert!(recall >= 0.9, "hnsw recall@{K} = {recall:.3} < 0.9");
}

/// Same seed, same insert order => the graph is identical and so is every
/// search result, ids and ranks included.
#[test]
fn hnsw_is_deterministic_under_fixed_seed() {
    const N: usize = 2000;
    const DIM: usize = 12;
    let build = || {
        let mut idx = HnswIndex::new(DIM, Metric::Euclidean, HnswConfig::default());
        for i in 0..N {
            idx.add(&vec_at(5, i, DIM));
        }
        idx
    };
    let (a, b) = (build(), build());
    for q in 0..32 {
        let query = vec_at(77, q, DIM);
        let (ra, rb) = (a.search(&query, 10), b.search(&query, 10));
        let key = |r: &[pz_vector::flat::Scored]| -> Vec<(pz_vector::VecId, String)> {
            r.iter()
                .map(|s| (s.id, format!("{:.6}", s.score)))
                .collect()
        };
        assert_eq!(key(&ra), key(&rb), "query {q} diverged between twin builds");
    }
}

/// Past `Collection::HNSW_THRESHOLD` the store answers from the HNSW
/// graph; results must still agree with an exact scan at recall >= 0.9.
#[test]
fn vector_store_routes_large_collections_to_hnsw() {
    const DIM: usize = 8;
    const K: usize = 10;
    let n = pz_vector::Collection::HNSW_THRESHOLD + 64;
    let store = VectorStore::new();
    store.ensure_collection("big", DIM, Metric::Cosine);
    let mut flat = FlatIndex::new(DIM, Metric::Cosine);
    for i in 0..n {
        let v = vec_at(11, i, DIM);
        store.add("big", &v, format!("p{i}")).unwrap();
        flat.add(&v);
    }
    let mut overlap = 0usize;
    let queries = 32;
    for q in 0..queries {
        let query = vec_at(13, q, DIM);
        let truth: std::collections::HashSet<_> =
            flat.search(&query, K).into_iter().map(|s| s.id).collect();
        overlap += store
            .search("big", &query, K)
            .unwrap()
            .iter()
            .filter(|h| truth.contains(&h.id))
            .count();
    }
    let recall = overlap as f64 / (queries * K) as f64;
    assert!(
        recall >= 0.9,
        "store recall@{K} past HNSW threshold = {recall:.3} < 0.9"
    );
}
