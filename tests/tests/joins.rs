//! Integration: joins inside full pipelines — enriching extracted records
//! against reference datasets (the relational-completeness extension).

use pz_core::prelude::*;
use pz_datagen::science;
use std::sync::Arc;

/// Scientific context plus a curated repository catalog as a second
/// registered dataset.
fn ctx_with_catalog() -> PzContext {
    let ctx = PzContext::simulated();
    let (docs, _) = science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    // One catalog entry per dataset in the pool, with its repository.
    let catalog: Vec<(String, String)> = science::CRC_DATASETS
        .iter()
        .enumerate()
        .map(|(i, (name, desc, _url))| {
            let repo = [
                "GDC",
                "GEO",
                "CPTAC",
                "cBioPortal",
                "ICGC",
                "COSMIC",
                "DepMap",
                "Atlas",
            ][i % 8];
            (
                format!("catalog-{i}.txt"),
                format!(
                    "repository: {repo}\ncatalog_entry: {} {}\n",
                    name.replace('-', " "),
                    desc
                ),
            )
        })
        .collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "repo-catalog",
        Schema::text_file(),
        catalog,
    )));
    ctx
}

fn clinical() -> Schema {
    Schema::new(
        "ClinicalData",
        "datasets used by papers",
        vec![
            FieldDef::text("name", "The name of the clinical data dataset"),
            FieldDef::text(
                "description",
                "A short description of the content of the dataset",
            ),
            FieldDef::text("url", "The public URL where the dataset can be accessed"),
        ],
    )
    .unwrap()
}

#[test]
fn semantic_join_enriches_extractions_with_catalog_entries() {
    let ctx = ctx_with_catalog();
    let plan = Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical(), Cardinality::OneToMany, "extract datasets")
        .join_semantic("repo-catalog", "the records refer to the same dataset")
        .build()
        .unwrap();
    assert_eq!(plan.semantic_op_count(), 3);
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    // Most extracted datasets find their catalog entry.
    assert!(
        (4..=10).contains(&outcome.records.len()),
        "{} joined records",
        outcome.records.len()
    );
    for rec in &outcome.records {
        // Enriched with the catalog side.
        assert!(
            rec.fields.contains_key("contents"),
            "catalog entry text carried over"
        );
        let name = rec.get("name").unwrap().as_display().to_lowercase();
        let entry = rec.get("contents").unwrap().as_display().to_lowercase();
        // The joined entry shares the dataset vocabulary.
        let first_token = name
            .split(['-', ' '])
            .next()
            .unwrap_or_default()
            .to_string();
        assert!(
            entry.contains(&first_token),
            "joined entry {entry:?} does not mention {name:?}"
        );
    }
    // The join's stats row shows the pair-wise calls.
    let join_row = outcome.stats.operators.last().unwrap();
    assert_eq!(join_row.logical, "join");
    assert!(
        join_row.llm_calls >= 6 * 8 / 2,
        "{} pair judgements",
        join_row.llm_calls
    );
}

#[test]
fn hash_join_is_free_and_exact() {
    let ctx = ctx_with_catalog();
    // Join papers with themselves by filename through a second registration.
    let (docs, _) = science::demo_corpus();
    let labels: Vec<(String, String)> = docs
        .iter()
        .map(|d| (d.filename.clone(), format!("label for {}", d.id)))
        .collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "labels",
        Schema::text_file(),
        labels,
    )));
    let plan = Dataset::source("sigmod-demo")
        .join_eq("labels", "filename", "filename")
        .build()
        .unwrap();
    let outcome = execute(&ctx, &plan, &Policy::MinCost, ExecutionConfig::sequential()).unwrap();
    assert_eq!(
        outcome.records.len(),
        11,
        "every paper matches its label row"
    );
    assert_eq!(outcome.stats.total_llm_calls, 0);
    assert_eq!(outcome.stats.total_cost_usd, 0.0);
    // Colliding fields from the build side are prefixed.
    assert!(
        outcome.records[0].fields.contains_key("labels_contents")
            || outcome.records[0].fields.contains_key("labels_filename")
    );
}

#[test]
fn join_schema_propagation_and_validation() {
    let ctx = ctx_with_catalog();
    let good = Dataset::source("sigmod-demo")
        .join_eq("repo-catalog", "filename", "filename")
        .build()
        .unwrap();
    let schema = good.output_schema(&ctx.registry).unwrap();
    assert!(schema.has_field("repo_catalog_filename") || schema.has_field("filename"));

    // Unknown join fields are caught at planning time.
    let bad = Dataset::source("sigmod-demo")
        .join_eq("repo-catalog", "nope", "filename")
        .build()
        .unwrap();
    assert!(bad.schemas(&ctx.registry).is_err());

    // Unknown build dataset caught too.
    let ghost = Dataset::source("sigmod-demo")
        .join_semantic("ghost", "same thing")
        .build()
        .unwrap();
    assert!(ghost.schemas(&ctx.registry).is_err());
}

#[test]
fn narrowing_before_semantic_join_cuts_cost() {
    let ctx1 = ctx_with_catalog();
    let narrowed = Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical(), Cardinality::OneToMany, "extract")
        .limit(2)
        .join_semantic("repo-catalog", "the records refer to the same dataset")
        .build()
        .unwrap();
    let o1 = execute(
        &ctx1,
        &narrowed,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();

    let ctx2 = ctx_with_catalog();
    let full = Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical(), Cardinality::OneToMany, "extract")
        .join_semantic("repo-catalog", "the records refer to the same dataset")
        .build()
        .unwrap();
    let o2 = execute(
        &ctx2,
        &full,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let join_cost = |o: &ExecutionOutcome| o.stats.operators.last().unwrap().cost_usd;
    assert!(
        join_cost(&o1) < join_cost(&o2),
        "limit(2) join {} vs full join {}",
        join_cost(&o1),
        join_cost(&o2)
    );
}
