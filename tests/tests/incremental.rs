//! Integration: incremental execution (`exec/incremental.rs`).
//!
//! The headline guarantee, test-enforced: for any plan and any edit script
//! (appends, updates, deletes), re-running incrementally over the edited
//! dataset produces the *same output multiset* as running from scratch —
//! while re-billing at most the delta. The differential proptests randomize
//! plans × edit scripts × execution modes × parallelism; targeted tests pin
//! each operator's memo rule, the full-rerun fallback for operators without
//! one, and the off-by-default byte-invisibility contract.

mod common;

use common::{
    arb_corpus, arb_steps_llm, assert_reconciled, build_plan, clinical_schema, has_early_exit,
    multiset, Step,
};
use proptest::prelude::*;
use pz_core::exec::execute_plan;
use pz_core::prelude::*;
use pz_datagen::edits::{self, EditOp};
use pz_datagen::science::{self, ScienceConfig};
use pz_datagen::Document;
use pz_llm::protocol::Effort;
use pz_llm::{FaultPlan, SimConfig};
use std::sync::Arc;

const DATASET: &str = "inc";

/// Armed incremental context over a versioned copy of `items`.
fn versioned_ctx(items: &[(String, String)]) -> (PzContext, Arc<VersionedSource>) {
    let ctx = PzContext::simulated().with_incremental();
    let src = Arc::new(VersionedSource::new(
        DATASET,
        Schema::pdf_file(),
        items.to_vec(),
    ));
    ctx.registry.register(src.clone());
    (ctx, src)
}

/// From-scratch baseline: fresh context, plain `MemorySource`, no memo.
fn scratch_run(
    items: &[(String, String)],
    plan: &PhysicalPlan,
    config: ExecutionConfig,
) -> (PzContext, Vec<DataRecord>, ExecutionStats) {
    let ctx = common::fresh_ctx(DATASET, items);
    let (rec, stats) = execute_plan(&ctx, plan, config).unwrap();
    (ctx, rec, stats)
}

fn to_docs(corpus: &[(String, String)]) -> Vec<Document> {
    corpus
        .iter()
        .map(|(f, c)| Document::new(f.clone(), f.clone(), c.clone()))
        .collect()
}

/// Apply one edit batch to the live source *and* to the mirror used for
/// the from-scratch comparison, mirroring `VersionedSource` semantics.
fn apply_batch(src: &VersionedSource, items: &mut Vec<(String, String)>, batch: &[EditOp]) {
    for op in batch {
        match op {
            EditOp::Append(d) => {
                src.append(&d.filename, &d.content);
                items.push((d.filename.clone(), d.content.clone()));
            }
            EditOp::Update { filename, content } => {
                src.update(filename, content);
                if let Some(e) = items.iter_mut().find(|(f, _)| f == filename) {
                    e.1 = content.clone();
                }
            }
            EditOp::Delete { filename } => {
                src.delete(filename);
                items.retain(|(f, _)| f != filename);
            }
        }
    }
}

fn base_config(mode_idx: usize) -> ExecutionConfig {
    match mode_idx {
        0 => ExecutionConfig::sequential(),
        _ => ExecutionConfig::streaming_with(2, 3),
    }
}

proptest! {
    /// The tentpole guarantee. For a random plan, a random seeded edit
    /// script, both execution modes, and worker pools of 1/2/8: after
    /// every batch the incremental re-run agrees with a from-scratch run
    /// on the output multiset, never bills more (absent an early-exit
    /// Limit, whose overrun is scheduling-dependent), and its per-operator
    /// stats still reconcile exactly against the ledger.
    #[test]
    fn incremental_rerun_matches_from_scratch(
        corpus in arb_corpus(),
        steps in arb_steps_llm(),
        seed in any::<u64>(),
        mode_idx in 0usize..2,
        p_idx in 0usize..3,
        (batches, ops) in (1usize..3, 1usize..4),
    ) {
        let parallelism = [1usize, 2, 8][p_idx];
        let plan = build_plan(DATASET, &steps);
        let inc_cfg = base_config(mode_idx)
            .with_parallelism(parallelism)
            .with_incremental();
        let scratch_cfg = base_config(mode_idx).with_parallelism(parallelism);

        let script = edits::edit_script(&to_docs(&corpus), seed, batches, ops);
        let (ctx, src) = versioned_ctx(&corpus);
        let mut items = corpus.clone();

        // Cold run warms the memo.
        let (_, stats0) = execute_plan(&ctx, &plan, inc_cfg).unwrap();
        prop_assert_eq!(stats0.memo_hits, 0, "cold run replayed from an empty memo");
        assert_reconciled(&ctx, &stats0);

        for batch in &script.batches {
            apply_batch(&src, &mut items, batch);
            ctx.reset_accounting();
            let (rec_i, stats_i) = execute_plan(&ctx, &plan, inc_cfg).unwrap();
            assert_reconciled(&ctx, &stats_i);

            let (ctx_f, rec_f, _) = scratch_run(&items, &plan, scratch_cfg);
            prop_assert_eq!(multiset(&rec_i), multiset(&rec_f));
            if !has_early_exit(&steps) {
                prop_assert!(
                    ctx.ledger.total_cost_usd() <= ctx_f.ledger.total_cost_usd() + 1e-9,
                    "incremental ${} > from-scratch ${}",
                    ctx.ledger.total_cost_usd(),
                    ctx_f.ledger.total_cost_usd()
                );
                prop_assert!(
                    ctx.ledger.total_requests() <= ctx_f.ledger.total_requests(),
                    "incremental {} calls > from-scratch {}",
                    ctx.ledger.total_requests(),
                    ctx_f.ledger.total_requests()
                );
            }
        }
    }

    /// Pure appends touching a memoized prefix re-bill *exactly* the
    /// delta: the incremental re-run's call count equals fresh(final
    /// corpus) − fresh(old corpus). Duplicate LLM steps are deduplicated
    /// first — two identical operators share a memo fingerprint, so the
    /// second replays the first's verdicts even within one run, which is
    /// correct but makes the unmemoized subtraction above miscount.
    #[test]
    fn pure_append_rebills_exactly_the_delta(
        corpus in arb_corpus(),
        raw_steps in arb_steps_llm(),
        seed in any::<u64>(),
        mode_idx in 0usize..2,
        appended in 1usize..3,
    ) {
        let mut seen_filters = Vec::new();
        let mut seen_classify = false;
        let steps: Vec<Step> = raw_steps
            .into_iter()
            .filter(|s| match s {
                Step::Limit(_) => false, // early exit voids exact counting
                Step::Filter(i) => {
                    if seen_filters.contains(i) {
                        false
                    } else {
                        seen_filters.push(*i);
                        true
                    }
                }
                Step::Classify => !std::mem::replace(&mut seen_classify, true),
                _ => true,
            })
            .collect();
        let plan = build_plan(DATASET, &steps);
        let config = base_config(mode_idx);

        let script = edits::append_script(seed, 1, appended);
        let (ctx, src) = versioned_ctx(&corpus);
        let mut items = corpus.clone();
        execute_plan(&ctx, &plan, config.with_incremental()).unwrap();
        apply_batch(&src, &mut items, &script.batches[0]);
        ctx.reset_accounting();
        let (rec_i, _) = execute_plan(&ctx, &plan, config.with_incremental()).unwrap();
        let delta_calls = ctx.ledger.total_requests();

        let (ctx_old, _, _) = scratch_run(&corpus, &plan, config);
        let (ctx_new, rec_f, _) = scratch_run(&items, &plan, config);
        prop_assert_eq!(multiset(&rec_i), multiset(&rec_f));
        prop_assert_eq!(
            delta_calls,
            ctx_new.ledger.total_requests() - ctx_old.ledger.total_requests(),
            "append re-billed more than the new records"
        );
    }
}

// ---------------------------------------------------------------------------
// Targeted per-operator memo rules.
// ---------------------------------------------------------------------------

fn demo_items() -> Vec<(String, String)> {
    let (docs, _) = science::demo_corpus();
    docs.into_iter().map(|d| (d.filename, d.content)).collect()
}

fn filter_convert_plan() -> PhysicalPlan {
    PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: DATASET.into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
            PhysicalOp::LlmConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract datasets".into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
        ],
    }
}

fn single_op_plan(op: PhysicalOp) -> PhysicalPlan {
    PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: DATASET.into(),
            },
            op,
        ],
    }
}

const DELTA_DOC: &str = "Delta document. A colorectal cancer screening cohort with the FunkyData \
     registry available at https://example.org/funky.";

/// Run `plan` cold on the demo corpus, apply `edit`, re-run incrementally,
/// and run from scratch on the edited corpus. Returns both contexts (their
/// ledgers carry the re-billed vs full accounting) and both record sets.
fn delta_scenario(
    plan: &PhysicalPlan,
    config: ExecutionConfig,
    edit: impl FnOnce(&VersionedSource, &mut Vec<(String, String)>),
) -> (PzContext, Vec<DataRecord>, PzContext, Vec<DataRecord>) {
    let mut items = demo_items();
    let (ctx, src) = versioned_ctx(&items);
    execute_plan(&ctx, plan, config.with_incremental()).unwrap();
    edit(&src, &mut items);
    ctx.reset_accounting();
    let (rec_i, _) = execute_plan(&ctx, plan, config.with_incremental()).unwrap();
    let (ctx_f, rec_f, _) = scratch_run(&items, plan, config);
    (ctx, rec_i, ctx_f, rec_f)
}

#[test]
fn update_rebills_only_the_touched_record() {
    for config in [ExecutionConfig::sequential(), ExecutionConfig::streaming()] {
        let (ctx_i, rec_i, ctx_f, rec_f) =
            delta_scenario(&filter_convert_plan(), config, |src, items| {
                let filename = items[0].0.clone();
                src.update(&filename, DELTA_DOC);
                items[0].1 = DELTA_DOC.into();
            });
        let delta = ctx_i.ledger.total_requests();
        assert_eq!(multiset(&rec_i), multiset(&rec_f));
        assert!(
            delta <= 2,
            "update of 1 record re-billed {delta} calls (want <= filter + convert)"
        );
        assert!(delta < ctx_f.ledger.total_requests());
    }
}

#[test]
fn delete_rebills_nothing() {
    for config in [ExecutionConfig::sequential(), ExecutionConfig::streaming()] {
        let (ctx_i, rec_i, _, rec_f) =
            delta_scenario(&filter_convert_plan(), config, |src, items| {
                let filename = items[3].0.clone();
                src.delete(&filename);
                items.remove(3);
            });
        let delta = ctx_i.ledger.total_requests();
        assert_eq!(multiset(&rec_i), multiset(&rec_f));
        assert_eq!(delta, 0, "a delete re-billed {delta} calls");
    }
}

#[test]
fn embedding_filter_delta_rule() {
    let plan = single_op_plan(PhysicalOp::EmbeddingFilter {
        predicate: "colorectal cancer tumor genomic mutation cohort".into(),
        model: "text-embedding-3-small".into(),
        threshold: 0.30,
    });
    let (ctx_i, rec_i, ctx_f, rec_f) =
        delta_scenario(&plan, ExecutionConfig::sequential(), |src, items| {
            src.append("delta-000.pdf", DELTA_DOC);
            items.push(("delta-000.pdf".into(), DELTA_DOC.into()));
        });
    assert_eq!(multiset(&rec_i), multiset(&rec_f));
    // Embeddings batch: both runs make one provider request, but the
    // incremental one embeds only the predicate + the appended record, so
    // the saving shows up in tokens, i.e. dollars.
    assert_eq!(ctx_i.ledger.total_requests(), 1);
    assert!(
        ctx_i.ledger.total_cost_usd() < ctx_f.ledger.total_cost_usd(),
        "incremental embed ${} not cheaper than from-scratch ${}",
        ctx_i.ledger.total_cost_usd(),
        ctx_f.ledger.total_cost_usd()
    );
}

#[test]
fn ensemble_filter_delta_rule() {
    let plan = single_op_plan(PhysicalOp::EnsembleFilter {
        predicate: science::FILTER_PREDICATE.into(),
        models: vec!["gpt-4o".into(), "gpt-4o-mini".into(), "llama-3-70b".into()],
        effort: Effort::Standard,
    });
    let (ctx_i, rec_i, ctx_f, rec_f) =
        delta_scenario(&plan, ExecutionConfig::sequential(), |src, items| {
            src.append("delta-000.pdf", DELTA_DOC);
            items.push(("delta-000.pdf".into(), DELTA_DOC.into()));
        });
    let delta = ctx_i.ledger.total_requests();
    assert_eq!(multiset(&rec_i), multiset(&rec_f));
    assert_eq!(
        delta, 3,
        "one vote per member model for the new record only"
    );
    assert!(delta < ctx_f.ledger.total_requests());
}

#[test]
fn classify_delta_rule() {
    let plan = single_op_plan(PhysicalOp::LlmClassify {
        labels: vec!["cancer".into(), "dataset".into(), "other".into()],
        output_field: "topic".into(),
        model: "gpt-4o".into(),
        effort: Effort::Standard,
    });
    let (ctx_i, rec_i, _, rec_f) =
        delta_scenario(&plan, ExecutionConfig::sequential(), |src, items| {
            src.append("delta-000.pdf", DELTA_DOC);
            items.push(("delta-000.pdf".into(), DELTA_DOC.into()));
        });
    let delta = ctx_i.ledger.total_requests();
    assert_eq!(multiset(&rec_i), multiset(&rec_f));
    assert_eq!(delta, 1, "classify bills exactly the appended record");
    // Every record still carries a label after the replayed merge.
    assert!(rec_i.iter().all(|r| r.get("topic").is_some()));
}

#[test]
fn fieldwise_convert_delta_rule() {
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: DATASET.into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
            PhysicalOp::FieldwiseConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract datasets".into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
        ],
    };
    let (ctx_i, rec_i, ctx_f, rec_f) =
        delta_scenario(&plan, ExecutionConfig::sequential(), |src, items| {
            src.append("delta-000.pdf", DELTA_DOC);
            items.push(("delta-000.pdf".into(), DELTA_DOC.into()));
        });
    let delta = ctx_i.ledger.total_requests();
    assert_eq!(multiset(&rec_i), multiset(&rec_f));
    // Filter (1 call) + one call per target field (2) for the new record.
    assert!(delta <= 3, "fieldwise convert re-billed {delta} calls");
    assert!(delta < ctx_f.ledger.total_requests());
}

/// The join memoizes per *left* record but folds the right dataset's
/// content into the operator fingerprint: editing the build side must
/// invalidate every memoized row rather than serve stale joins.
#[test]
fn llm_join_right_side_edit_invalidates_fingerprint() {
    let left_items: Vec<(String, String)> = vec![
        (
            "l-0.txt".into(),
            "TCGA-COADREAD colorectal adenocarcinoma multi omics cohort".into(),
        ),
        (
            "l-1.txt".into(),
            "GSE39582 gene expression profiles of colon cancer tumors".into(),
        ),
    ];
    let right_items: Vec<(String, String)> = vec![
        (
            "cat-0.txt".into(),
            "repository: TCGA\ncatalog_entry: TCGA-COADREAD colorectal adenocarcinoma omics\n"
                .into(),
        ),
        (
            "cat-1.txt".into(),
            "repository: GEO\ncatalog_entry: GSE39582 colon cancer expression profiles\n".into(),
        ),
    ];
    let plan = single_op_plan(PhysicalOp::LlmJoin {
        dataset: "catalog".into(),
        criterion: "the records refer to the same dataset".into(),
        model: "gpt-4o".into(),
        effort: Effort::Standard,
    });

    let ctx = PzContext::simulated().with_incremental();
    let left = Arc::new(VersionedSource::new(
        DATASET,
        Schema::text_file(),
        left_items.clone(),
    ));
    let right = Arc::new(VersionedSource::new(
        "catalog",
        Schema::text_file(),
        right_items.clone(),
    ));
    ctx.registry.register(left.clone());
    ctx.registry.register(right.clone());

    let config = ExecutionConfig::sequential().with_incremental();
    let (rec1, _) = execute_plan(&ctx, &plan, config).unwrap();
    assert_eq!(ctx.ledger.total_requests(), 2 * 2, "left × right pairs");

    // Unchanged build side: the join replays for free.
    ctx.reset_accounting();
    let (rec2, _) = execute_plan(&ctx, &plan, config).unwrap();
    assert_eq!(ctx.ledger.total_requests(), 0, "unchanged join re-billed");
    assert_eq!(multiset(&rec1), multiset(&rec2));

    // Edited build side: the fingerprint rotates, everything re-runs.
    let extra = (
        "cat-2.txt".to_string(),
        "repository: SDSS\ncatalog_entry: quasar redshift sky survey imaging\n".to_string(),
    );
    right.append(&extra.0, &extra.1);
    ctx.reset_accounting();
    let (rec3, _) = execute_plan(&ctx, &plan, config).unwrap();
    assert_eq!(
        ctx.ledger.total_requests(),
        2 * 3,
        "right-side edit must invalidate every memoized join row"
    );

    // And the re-run agrees with a from-scratch join over the new catalog.
    let scratch = PzContext::simulated();
    scratch.registry.register(Arc::new(MemorySource::new(
        DATASET,
        Schema::text_file(),
        left_items,
    )));
    let mut new_right = right_items;
    new_right.push(extra);
    scratch.registry.register(Arc::new(MemorySource::new(
        "catalog",
        Schema::text_file(),
        new_right,
    )));
    let (rec_f, _) = execute_plan(&scratch, &plan, ExecutionConfig::sequential()).unwrap();
    assert_eq!(multiset(&rec3), multiset(&rec_f));
}

/// Operators without a memo rule (here: Retrieve) fall back to a
/// transparent full re-run — correctness never depends on coverage. The
/// re-bill is partial: the memoized filter downstream stays free.
#[test]
fn retrieve_falls_back_to_full_rerun() {
    let (docs, _) = science::generate(ScienceConfig {
        n_papers: 12,
        ..Default::default()
    });
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: DATASET.into(),
            },
            PhysicalOp::Retrieve {
                query: "colorectal cancer tumor genomic mutation".into(),
                k: 5,
                model: "text-embedding-3-small".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Effort::Standard,
            },
        ],
    };
    let (ctx, _src) = versioned_ctx(&items);
    let config = ExecutionConfig::sequential().with_incremental();
    let (rec1, _) = execute_plan(&ctx, &plan, config).unwrap();
    let cold_calls = ctx.ledger.total_requests();

    ctx.reset_accounting();
    let (rec2, _) = execute_plan(&ctx, &plan, config).unwrap();
    let rerun_calls = ctx.ledger.total_requests();
    assert_eq!(multiset(&rec1), multiset(&rec2));
    assert!(rerun_calls > 0, "retrieve must re-run: it has no memo rule");
    assert!(
        rerun_calls < cold_calls,
        "downstream filter was not memoized: {rerun_calls} vs {cold_calls}"
    );
}

/// Off by default, byte-invisible when off: with the config flag down, a
/// context carrying an armed snapshot must behave identically to a plain
/// context over a plain `MemorySource` — same records, cost, calls, and
/// (sequentially, where execution is exactly deterministic) byte-identical
/// serialized stats; no memo key in the JSON, no replay trace events.
#[test]
fn incremental_off_is_byte_invisible() {
    for config in [ExecutionConfig::sequential(), ExecutionConfig::streaming()] {
        let items = demo_items();
        let (ctx_armed, _src) = versioned_ctx(&items);
        let (rec_a, stats_a) = execute_plan(&ctx_armed, &filter_convert_plan(), config).unwrap();

        let ctx_plain = common::fresh_ctx(DATASET, &items);
        let (rec_p, stats_p) = execute_plan(&ctx_plain, &filter_convert_plan(), config).unwrap();

        assert_eq!(multiset(&rec_a), multiset(&rec_p));
        assert_eq!(
            ctx_armed.ledger.total_requests(),
            ctx_plain.ledger.total_requests()
        );
        assert!(
            (ctx_armed.ledger.total_cost_usd() - ctx_plain.ledger.total_cost_usd()).abs() < 1e-9
        );
        assert!((ctx_armed.clock.now_secs() - ctx_plain.clock.now_secs()).abs() < 1e-9);
        assert_eq!(stats_a.memo_hits, 0);
        assert!(ctx_armed.incremental.as_ref().unwrap().is_empty());
        let json = serde_json::to_string(&stats_a).unwrap();
        assert!(!json.contains("memo_hits"), "zero memo_hits serialized");
        assert_eq!(ctx_armed.tracer.counter("exec.memo_replay"), 0);
        assert!(!ctx_armed
            .tracer
            .snapshot()
            .to_jsonl()
            .contains("memo_replay"));
        if config.mode == ExecMode::Materializing {
            assert_eq!(
                serde_json::to_string(&stats_a).unwrap(),
                serde_json::to_string(&stats_p).unwrap()
            );
        }
    }
}

/// The fault-matrix cell: under the E18 brownout (sub-threshold timeouts,
/// retried to success — no breaker, no failover) an incremental re-run
/// after an append must still agree with a from-scratch run under the
/// *same* fault plan, and still bill only the delta.
#[test]
fn brownout_incremental_rerun_matches_from_scratch() {
    let brownout = || FaultPlan::parse("gpt-4o:timeout@0..1e9:p=0.35:stall=25", 11).unwrap();
    for config in [
        ExecutionConfig::sequential().with_incremental(),
        ExecutionConfig::streaming().with_incremental(),
    ] {
        let ctx = PzContext::simulated_with(SimConfig {
            seed: 0,
            fault_plan: brownout(),
            ..Default::default()
        })
        .with_incremental();
        let mut items = demo_items();
        let src = Arc::new(VersionedSource::new(
            DATASET,
            Schema::pdf_file(),
            items.clone(),
        ));
        ctx.registry.register(src.clone());

        execute_plan(&ctx, &filter_convert_plan(), config).unwrap();
        src.append("delta-000.pdf", DELTA_DOC);
        items.push(("delta-000.pdf".into(), DELTA_DOC.into()));
        ctx.reset_accounting();
        let (rec_i, stats_i) = execute_plan(&ctx, &filter_convert_plan(), config).unwrap();
        let delta_calls = ctx.ledger.total_requests();
        assert_reconciled(&ctx, &stats_i);

        let scratch = PzContext::simulated_with(SimConfig {
            seed: 0,
            fault_plan: brownout(),
            ..Default::default()
        });
        scratch.registry.register(Arc::new(MemorySource::new(
            DATASET,
            Schema::pdf_file(),
            items.clone(),
        )));
        let (rec_f, _) = execute_plan(
            &scratch,
            &filter_convert_plan(),
            ExecutionConfig::sequential(),
        )
        .unwrap();
        assert_eq!(multiset(&rec_i), multiset(&rec_f));
        assert!(delta_calls <= 2, "brownout delta re-billed {delta_calls}");
        assert!(delta_calls < scratch.ledger.total_requests());
    }
}
