//! Integration: the Classify operator composing with conventional
//! operators — categorize the legal corpus, then group-by the label.

use pz_core::prelude::*;
use std::sync::Arc;

fn legal_ctx() -> (PzContext, pz_datagen::legal::LegalTruth) {
    let ctx = PzContext::simulated();
    let (docs, truth) = pz_datagen::legal::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "legal-demo",
        Schema::text_file(),
        items,
    )));
    (ctx, truth)
}

const LABELS: [&str; 2] = ["acme initech merger deal", "office social staff"];

#[test]
fn classify_then_group_by_counts_categories() {
    let (ctx, truth) = legal_ctx();
    let plan = Dataset::source("legal-demo")
        .classify(&LABELS, "category")
        .aggregate(&["category"], vec![AggExpr::new(AggFunc::Count, "", "n")])
        .build()
        .unwrap();
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    // Two categories come back with counts summing to the corpus size.
    assert_eq!(outcome.records.len(), 2, "{:?}", outcome.records);
    let total: f64 = outcome
        .records
        .iter()
        .map(|r| r.get("n").unwrap().as_f64().unwrap())
        .sum();
    assert_eq!(total as usize, 12);
    // The merger bucket should be near the true responsive count (5).
    let merger = outcome
        .records
        .iter()
        .find(|r| r.get("category").unwrap().as_display().contains("merger"))
        .expect("merger bucket");
    let n = merger.get("n").unwrap().as_f64().unwrap() as i64;
    let want = truth.responsive_count() as i64;
    assert!((n - want).abs() <= 2, "classified {n}, truth {want}");
}

#[test]
fn classify_label_feeds_udf_filter() {
    let (ctx, _) = legal_ctx();
    ctx.udfs.register_filter("merger_only", |r: &DataRecord| {
        r.get("category")
            .map(|v| v.as_display().contains("merger"))
            .unwrap_or(false)
    });
    let plan = Dataset::source("legal-demo")
        .classify(&LABELS, "category")
        .filter_udf("merger_only")
        .build()
        .unwrap();
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert!(
        (3..=7).contains(&outcome.records.len()),
        "{} merger mails",
        outcome.records.len()
    );
    for r in &outcome.records {
        assert!(r.get("category").unwrap().as_display().contains("merger"));
    }
}

#[test]
fn classify_validates_at_plan_time() {
    let (ctx, _) = legal_ctx();
    // Too few labels.
    assert!(Dataset::source("legal-demo")
        .classify(&["only-one"], "c")
        .build()
        .is_err());
    // Bad output field name caught during schema propagation.
    let plan = Dataset::source("legal-demo")
        .classify(&LABELS, "bad name")
        .build()
        .unwrap();
    assert!(plan.schemas(&ctx.registry).is_err());
    // Good plan propagates the new field.
    let good = Dataset::source("legal-demo")
        .classify(&LABELS, "category")
        .build()
        .unwrap();
    let out = good.output_schema(&ctx.registry).unwrap();
    assert!(out.has_field("category"));
    assert!(out.has_field("contents"));
}

#[test]
fn policies_trade_classification_cost() {
    let run = |policy: Policy| {
        let (ctx, _) = legal_ctx();
        let plan = Dataset::source("legal-demo")
            .classify(&LABELS, "category")
            .build()
            .unwrap();
        execute(&ctx, &plan, &policy, ExecutionConfig::sequential())
            .unwrap()
            .stats
            .total_cost_usd
    };
    assert!(run(Policy::MinCost) < run(Policy::MaxQuality));
}

#[test]
fn union_merges_two_archives() {
    // UNION ALL of two e-mail archives, then classify the merged stream.
    let (ctx, _) = legal_ctx();
    let (docs2, _) = pz_datagen::legal::generate(pz_datagen::legal::LegalConfig {
        n_emails: 8,
        seed: 77,
        ..Default::default()
    });
    let items: Vec<(String, String)> = docs2
        .into_iter()
        .map(|d| (format!("b-{}", d.filename), d.content))
        .collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "legal-archive-b",
        Schema::text_file(),
        items,
    )));
    let plan = Dataset::source("legal-demo")
        .union("legal-archive-b")
        .classify(&LABELS, "category")
        .build()
        .unwrap();
    let outcome = execute(&ctx, &plan, &Policy::MinCost, ExecutionConfig::sequential()).unwrap();
    assert_eq!(outcome.records.len(), 20, "12 + 8 mails survive the union");
    assert!(outcome
        .records
        .iter()
        .all(|r| r.fields.contains_key("category")));
    // The union itself is free.
    let union_row = outcome
        .stats
        .operators
        .iter()
        .find(|o| o.logical == "union")
        .unwrap();
    assert_eq!(union_row.llm_calls, 0);
    assert_eq!(union_row.output_records, 20);
}

#[test]
fn union_validates_schema_compatibility() {
    let (ctx, _) = legal_ctx();
    // Missing dataset detected at planning time.
    let ghost = Dataset::source("legal-demo")
        .union("ghost")
        .build()
        .unwrap();
    assert!(ghost.schemas(&ctx.registry).is_err());
    // Empty dataset name rejected at build time.
    assert!(Dataset::source("legal-demo").union("").build().is_err());
}
