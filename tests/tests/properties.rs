//! Cross-crate property tests: invariants of the relational operators and
//! lossless plan serialization.

mod common;

use proptest::prelude::*;
use pz_core::ops::relational::{distinct, limit, project, sort};
use pz_core::prelude::*;

fn rec(id: u64, x: i64, s: &str) -> DataRecord {
    DataRecord::new(id).with_field("x", x).with_field("s", s)
}

fn arb_records() -> impl Strategy<Value = Vec<DataRecord>> {
    proptest::collection::vec((0i64..50, "[a-d]{0,3}"), 0..25).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (x, s))| rec(i as u64, x, &s))
            .collect()
    })
}

proptest! {
    #[test]
    fn sort_is_a_permutation(input in arb_records(), desc in any::<bool>()) {
        let sorted = sort(input.clone(), "x", desc);
        prop_assert_eq!(sorted.len(), input.len());
        let mut in_ids: Vec<u64> = input.iter().map(|r| r.id).collect();
        let mut out_ids: Vec<u64> = sorted.iter().map(|r| r.id).collect();
        in_ids.sort_unstable();
        out_ids.sort_unstable();
        prop_assert_eq!(in_ids, out_ids);
        // And it is ordered.
        let xs: Vec<i64> = sorted.iter().map(|r| r.get("x").unwrap().as_int().unwrap()).collect();
        for w in xs.windows(2) {
            if desc {
                prop_assert!(w[0] >= w[1]);
            } else {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn sort_is_idempotent(input in arb_records()) {
        let once = sort(input, "x", false);
        let twice = sort(once.clone(), "x", false);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn distinct_is_idempotent_and_shrinking(input in arb_records()) {
        let fields = vec!["x".to_string()];
        let once = distinct(input.clone(), &fields);
        prop_assert!(once.len() <= input.len());
        let twice = distinct(once.clone(), &fields);
        prop_assert_eq!(once.clone(), twice);
        // Keys are unique afterwards.
        let mut keys: Vec<i64> =
            once.iter().map(|r| r.get("x").unwrap().as_int().unwrap()).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), n);
    }

    #[test]
    fn limit_bounds_and_prefixes(input in arb_records(), n in 0usize..30) {
        let out = limit(input.clone(), n);
        prop_assert_eq!(out.len(), input.len().min(n));
        prop_assert_eq!(out.as_slice(), &input[..out.len()]);
    }

    #[test]
    fn project_only_keeps_requested(input in arb_records()) {
        let out = project(input, &["x".to_string()]);
        for r in &out {
            prop_assert!(r.get("x").is_some());
            prop_assert!(r.get("s").is_none());
        }
    }

    #[test]
    fn logical_plans_round_trip_serde(
        predicate in "[a-z ]{1,30}",
        n in 1usize..20,
        desc in any::<bool>(),
        k in 1usize..10,
    ) {
        let plan = Dataset::source("src")
            .filter(predicate)
            .retrieve("some query", k)
            .sort("x", desc)
            .limit(n)
            .join_eq("other", "a", "b")
            .distinct(&["x"])
            .build()
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: LogicalPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn physical_plans_round_trip_serde(n in 1usize..6) {
        use pz_llm::protocol::Effort;
        let mut ops = vec![PhysicalOp::Scan { dataset: "d".into() }];
        for i in 0..n {
            ops.push(PhysicalOp::LlmFilter {
                predicate: format!("pred {i}"),
                model: "gpt-4o".into(),
                effort: if i % 2 == 0 { Effort::Standard } else { Effort::High },
            });
        }
        let plan = PhysicalPlan { ops };
        let json = serde_json::to_string(&plan).unwrap();
        let back: PhysicalPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }
}

// ---------------------------------------------------------------------------
// Differential testing: streaming vs materializing execution.
//
// For randomized corpora and randomized operator chains, both executors must
// produce the same output record multiset (compared on field content — record
// ids are allocator-dependent) and charge the same dollars to the ledger.
// ---------------------------------------------------------------------------

mod differential {
    use super::*;
    use crate::common::{arb_corpus, arb_steps, build_plan, fresh_ctx, has_early_exit, multiset};
    use pz_core::exec::execute_plan;

    proptest! {
        #[test]
        fn streaming_equals_materializing_records_and_cost(
            corpus in arb_corpus(),
            steps in arb_steps(),
            capacity in 1usize..4,
            batch in 1usize..6,
        ) {
            let plan = build_plan("diff", &steps);
            // A tail Limit legitimately lets streaming skip upstream LLM
            // calls, so cost equality is only asserted when every record
            // flows end to end. Output equality must hold regardless.
            let has_early_exit = has_early_exit(&steps);

            let ctx_m = fresh_ctx("diff", &corpus);
            let (rec_m, stats_m) =
                execute_plan(&ctx_m, &plan, ExecutionConfig::sequential()).unwrap();
            let ctx_s = fresh_ctx("diff", &corpus);
            let (rec_s, stats_s) =
                execute_plan(&ctx_s, &plan, ExecutionConfig::streaming_with(capacity, batch))
                    .unwrap();

            prop_assert_eq!(multiset(&rec_m), multiset(&rec_s));
            if !has_early_exit {
                prop_assert!(
                    (ctx_m.ledger.total_cost_usd() - ctx_s.ledger.total_cost_usd()).abs() < 1e-9,
                    "materializing ${} vs streaming ${}",
                    ctx_m.ledger.total_cost_usd(),
                    ctx_s.ledger.total_cost_usd()
                );
                prop_assert_eq!(ctx_m.ledger.total_requests(), ctx_s.ledger.total_requests());
                prop_assert!((stats_m.total_cost_usd - stats_s.total_cost_usd).abs() < 1e-9);
            } else {
                // Early exit may only ever *reduce* streaming's work.
                prop_assert!(
                    ctx_s.ledger.total_requests() <= ctx_m.ledger.total_requests()
                );
            }
            // Overlap never makes the pipeline slower than serial.
            prop_assert!(stats_s.total_time_secs <= stats_m.total_time_secs + 1e-9);
        }

        /// Intra-operator worker pools are an attribution-only change: for
        /// any plan and any parallelism degree, the pooled streaming run
        /// must agree with the serial streaming run on the output multiset
        /// and (absent early exit) the ledger, and its per-operator stats
        /// must still reconcile exactly against the ledger.
        #[test]
        fn parallel_streaming_equals_serial_streaming(
            corpus in arb_corpus(),
            steps in arb_steps(),
            p_idx in 0usize..3,
            batch in 1usize..4,
        ) {
            let parallelism = [1usize, 2, 8][p_idx];
            let plan = build_plan("diff", &steps);
            let has_early_exit = has_early_exit(&steps);

            let ctx_1 = fresh_ctx("diff", &corpus);
            let (rec_1, stats_1) =
                execute_plan(&ctx_1, &plan, ExecutionConfig::streaming_with(2, batch)).unwrap();
            let ctx_p = fresh_ctx("diff", &corpus);
            let (rec_p, stats_p) = execute_plan(
                &ctx_p,
                &plan,
                ExecutionConfig::streaming_with(2, batch).with_parallelism(parallelism),
            )
            .unwrap();

            prop_assert_eq!(multiset(&rec_1), multiset(&rec_p));
            if !has_early_exit {
                prop_assert!(
                    (ctx_1.ledger.total_cost_usd() - ctx_p.ledger.total_cost_usd()).abs() < 1e-9,
                    "serial ${} vs parallelism {} ${}",
                    ctx_1.ledger.total_cost_usd(),
                    parallelism,
                    ctx_p.ledger.total_cost_usd()
                );
                prop_assert_eq!(ctx_1.ledger.total_requests(), ctx_p.ledger.total_requests());
            }
            // Pools divide attributed busy time; they never add any.
            prop_assert!(stats_p.total_time_secs <= stats_1.total_time_secs + 1e-9);
            // OperatorStats reconciliation must survive concurrent workers:
            // every dollar and every call the ledger saw is attributed to
            // exactly one operator.
            let op_cost: f64 = stats_p.operators.iter().map(|o| o.cost_usd).sum();
            let op_calls: usize = stats_p.operators.iter().map(|o| o.llm_calls).sum();
            prop_assert!(
                (op_cost - ctx_p.ledger.total_cost_usd()).abs() < 1e-9,
                "op cost sum {} vs ledger {}",
                op_cost,
                ctx_p.ledger.total_cost_usd()
            );
            prop_assert_eq!(op_calls, ctx_p.ledger.total_requests());
        }
    }
}

#[test]
fn schemas_round_trip_serde() {
    let s = Schema::new(
        "ClinicalData",
        "doc",
        vec![
            FieldDef::text("name", "The name"),
            FieldDef::typed("price", FieldType::Int, "dollars").required(),
        ],
    )
    .unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: Schema = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
}
