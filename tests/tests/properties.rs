//! Cross-crate property tests: invariants of the relational operators and
//! lossless plan serialization.

use proptest::prelude::*;
use pz_core::ops::relational::{distinct, limit, project, sort};
use pz_core::prelude::*;

fn rec(id: u64, x: i64, s: &str) -> DataRecord {
    DataRecord::new(id).with_field("x", x).with_field("s", s)
}

fn arb_records() -> impl Strategy<Value = Vec<DataRecord>> {
    proptest::collection::vec((0i64..50, "[a-d]{0,3}"), 0..25).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (x, s))| rec(i as u64, x, &s))
            .collect()
    })
}

proptest! {
    #[test]
    fn sort_is_a_permutation(input in arb_records(), desc in any::<bool>()) {
        let sorted = sort(input.clone(), "x", desc);
        prop_assert_eq!(sorted.len(), input.len());
        let mut in_ids: Vec<u64> = input.iter().map(|r| r.id).collect();
        let mut out_ids: Vec<u64> = sorted.iter().map(|r| r.id).collect();
        in_ids.sort_unstable();
        out_ids.sort_unstable();
        prop_assert_eq!(in_ids, out_ids);
        // And it is ordered.
        let xs: Vec<i64> = sorted.iter().map(|r| r.get("x").unwrap().as_int().unwrap()).collect();
        for w in xs.windows(2) {
            if desc {
                prop_assert!(w[0] >= w[1]);
            } else {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn sort_is_idempotent(input in arb_records()) {
        let once = sort(input, "x", false);
        let twice = sort(once.clone(), "x", false);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn distinct_is_idempotent_and_shrinking(input in arb_records()) {
        let fields = vec!["x".to_string()];
        let once = distinct(input.clone(), &fields);
        prop_assert!(once.len() <= input.len());
        let twice = distinct(once.clone(), &fields);
        prop_assert_eq!(once.clone(), twice);
        // Keys are unique afterwards.
        let mut keys: Vec<i64> =
            once.iter().map(|r| r.get("x").unwrap().as_int().unwrap()).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), n);
    }

    #[test]
    fn limit_bounds_and_prefixes(input in arb_records(), n in 0usize..30) {
        let out = limit(input.clone(), n);
        prop_assert_eq!(out.len(), input.len().min(n));
        prop_assert_eq!(out.as_slice(), &input[..out.len()]);
    }

    #[test]
    fn project_only_keeps_requested(input in arb_records()) {
        let out = project(input, &["x".to_string()]);
        for r in &out {
            prop_assert!(r.get("x").is_some());
            prop_assert!(r.get("s").is_none());
        }
    }

    #[test]
    fn logical_plans_round_trip_serde(
        predicate in "[a-z ]{1,30}",
        n in 1usize..20,
        desc in any::<bool>(),
        k in 1usize..10,
    ) {
        let plan = Dataset::source("src")
            .filter(predicate)
            .retrieve("some query", k)
            .sort("x", desc)
            .limit(n)
            .join_eq("other", "a", "b")
            .distinct(&["x"])
            .build()
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: LogicalPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn physical_plans_round_trip_serde(n in 1usize..6) {
        use pz_llm::protocol::Effort;
        let mut ops = vec![PhysicalOp::Scan { dataset: "d".into() }];
        for i in 0..n {
            ops.push(PhysicalOp::LlmFilter {
                predicate: format!("pred {i}"),
                model: "gpt-4o".into(),
                effort: if i % 2 == 0 { Effort::Standard } else { Effort::High },
            });
        }
        let plan = PhysicalPlan { ops };
        let json = serde_json::to_string(&plan).unwrap();
        let back: PhysicalPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }
}

#[test]
fn schemas_round_trip_serde() {
    let s = Schema::new(
        "ClinicalData",
        "doc",
        vec![
            FieldDef::text("name", "The name"),
            FieldDef::typed("price", FieldType::Int, "dollars").required(),
        ],
    )
    .unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: Schema = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
}
