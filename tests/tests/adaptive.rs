//! Integration: runtime adaptive re-optimization (`optimizer/adaptive.rs`).
//!
//! The brownout scenario the breaker cannot see: a model answers, slowly
//! and through stalls, at a failure rate below the trip threshold. Static
//! execution grinds through it; adaptive execution re-costs the remaining
//! suffix and swaps the degraded model for a healthy substitute, producing
//! the same output multiset in less virtual time. Off (the default), the
//! layer must be byte-invisible.

mod common;

use common::{assert_reconciled, clinical_schema, ctx_with, sorted_names};
use pz_core::prelude::*;
use pz_datagen::science;
use pz_llm::FaultPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn demo_plan() -> LogicalPlan {
    Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical_schema(), Cardinality::OneToMany, "extract")
        .build()
        .unwrap()
}

/// The E18 physical plan, written out explicitly so both runs execute the
/// *identical* operators: the filter sits on the (faulted) champion, the
/// convert on the healthy substitute — so a mid-stream filter swap is the
/// only difference adaptation can introduce.
fn brownout_plan() -> PhysicalPlan {
    PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "sigmod-demo".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Default::default(),
            },
            PhysicalOp::LlmConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract".into(),
                model: "llama-3-70b".into(),
                effort: Default::default(),
            },
        ],
    }
}

/// The scripted brownout: gpt-4o stalls 25 virtual seconds on ~35% of
/// calls — enough pressure to cross the adaptive health threshold (0.34),
/// far below the breaker's trip rate (0.75 over a 12-failure window).
fn brownout() -> FaultPlan {
    FaultPlan::parse("gpt-4o:timeout@0..1e9:p=0.35:stall=25", 11).unwrap()
}

/// Off by default: a faulted run with adaptation disabled must leave zero
/// adaptive fingerprints anywhere — no replan counter, no trace events, no
/// `adaptive` key in the serialized stats.
#[test]
fn adaptive_off_leaves_no_trace_under_faults() {
    for config in [ExecutionConfig::sequential(), ExecutionConfig::streaming()] {
        let ctx = ctx_with(brownout(), 0);
        let (records, stats) = pz_core::exec::execute_plan(&ctx, &brownout_plan(), config).unwrap();
        assert!(!records.is_empty());
        assert!(stats.adaptive.is_empty());
        assert_eq!(ctx.tracer.counter("exec.replan"), 0);
        let json = serde_json::to_string(&stats).unwrap();
        assert!(!json.contains("adaptive"), "empty adaptive vec serialized");
        assert!(!ctx.tracer.snapshot().to_jsonl().contains("replan"));
    }
}

/// While every model stays healthy and on-estimate, an adaptive-enabled
/// run is indistinguishable from a disabled one: same records, cost,
/// request count, virtual clock, and stats. Sequential execution is
/// exactly deterministic, so there the whole serialized stats must match
/// byte for byte; streaming stages accumulate f64 time across threads,
/// which wobbles in the last ulp between any two runs (adaptive or not),
/// so the streaming comparison allows that pre-existing noise.
#[test]
fn healthy_adaptive_run_is_byte_identical_to_off() {
    for config in [ExecutionConfig::sequential(), ExecutionConfig::streaming()] {
        let ctx_off = ctx_with(FaultPlan::none(), 0);
        let out_off = execute(&ctx_off, &demo_plan(), &Policy::MaxQuality, config).unwrap();

        let ctx_on = ctx_with(FaultPlan::none(), 0);
        let out_on = execute(
            &ctx_on,
            &demo_plan(),
            &Policy::MaxQuality,
            config.with_adaptive(AdaptiveConfig::on()),
        )
        .unwrap();

        assert_eq!(
            sorted_names(&out_off.records),
            sorted_names(&out_on.records)
        );
        assert_eq!(
            ctx_off.ledger.total_requests(),
            ctx_on.ledger.total_requests()
        );
        assert!((ctx_off.ledger.total_cost_usd() - ctx_on.ledger.total_cost_usd()).abs() < 1e-9);
        assert!((ctx_off.clock.now_secs() - ctx_on.clock.now_secs()).abs() < 1e-9);
        assert!(out_on.stats.adaptive.is_empty());
        assert_eq!(ctx_on.tracer.counter("exec.replan"), 0);
        if config.mode == ExecMode::Materializing {
            assert_eq!(
                ctx_off.ledger.total_cost_usd(),
                ctx_on.ledger.total_cost_usd()
            );
            assert_eq!(ctx_off.clock.now_secs(), ctx_on.clock.now_secs());
            assert_eq!(
                serde_json::to_string(&out_off.stats).unwrap(),
                serde_json::to_string(&out_on.stats).unwrap()
            );
        }
    }
}

/// Materializing actuation: the filter browns out while it runs; once it
/// completes, the controller re-costs the suffix and moves the *convert*
/// (still planned on the same degraded model) to a healthy substitute
/// before it starts.
#[test]
fn materializing_brownout_repairs_unexecuted_suffix() {
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "sigmod-demo".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: Default::default(),
            },
            PhysicalOp::LlmConvert {
                target: clinical_schema(),
                cardinality: Cardinality::OneToMany,
                description: "extract".into(),
                model: "gpt-4o".into(),
                effort: Default::default(),
            },
        ],
    };
    let ctx = ctx_with(brownout(), 0);
    let config = ExecutionConfig::sequential().with_adaptive(AdaptiveConfig::on());
    let (records, stats) = pz_core::exec::execute_plan(&ctx, &plan, config).unwrap();
    assert!(!records.is_empty());
    assert!(
        !stats.adaptive.is_empty(),
        "brownout left the plan unrepaired"
    );
    let r = &stats.adaptive[0];
    assert_eq!(r.operator_index, 2, "repair hit the wrong operator");
    assert_eq!(r.from_model, "gpt-4o");
    assert_ne!(r.to_model, "gpt-4o");
    assert!(r.observed_ratio >= r.threshold);
    assert!(r.est_suffix_secs_after < r.est_suffix_secs_before);
    // The repaired convert actually ran on the substitute.
    let convert = &stats.operators[2];
    assert_eq!(convert.model.as_deref(), Some(r.to_model.as_str()));
    assert_eq!(
        ctx.tracer.counter("exec.replan"),
        stats.adaptive.len() as u64
    );
    assert!(ctx.tracer.snapshot().to_jsonl().contains("replan"));
    assert_reconciled(&ctx, &stats);
    assert!(stats.render_table().contains("REPLANNED"));
}

/// E18, the acceptance scenario: under the brownout the static pipeline
/// keeps paying 25-second stalls on every third call; the adaptive one
/// sticky-swaps the filter onto a healthy model mid-stream. Both produce
/// the same output multiset; adaptive finishes in strictly less virtual
/// time; every switch is visible as an `exec.replan` event reconciling
/// with the recorded reports.
#[test]
fn e18_streaming_brownout_static_vs_adaptive() {
    let ctx_s = ctx_with(brownout(), 0);
    let (rec_s, stats_s) =
        pz_core::exec::execute_plan(&ctx_s, &brownout_plan(), ExecutionConfig::streaming())
            .unwrap();

    let ctx_a = ctx_with(brownout(), 0);
    let (rec_a, stats_a) = pz_core::exec::execute_plan(
        &ctx_a,
        &brownout_plan(),
        ExecutionConfig::streaming().with_adaptive(AdaptiveConfig::on()),
    )
    .unwrap();

    // The static run rode the brownout without tripping anything: no
    // breaker, no failover — the regime adaptation exists for.
    assert!(stats_s.adaptive.is_empty());
    assert!(
        stats_s.degraded.is_empty(),
        "static run failed over; brownout too hot: {:?}",
        stats_s.degraded
    );
    assert_eq!(ctx_s.tracer.counter("llm.breaker_opened"), 0);

    // The adaptive run repaired the filter stage mid-stream.
    assert!(!stats_a.adaptive.is_empty(), "no adaptive repair fired");
    let r = &stats_a.adaptive[0];
    assert_eq!(r.operator_index, 1);
    assert_eq!(r.from_model, "gpt-4o");
    assert!(r.records_remaining > 0);
    assert!(r.observed_ratio >= r.threshold);

    // Same answer, strictly less virtual time.
    assert!(!rec_s.is_empty());
    assert_eq!(sorted_names(&rec_s), sorted_names(&rec_a));
    assert!(
        ctx_a.clock.now_secs() < ctx_s.clock.now_secs(),
        "adaptive {} not faster than static {}",
        ctx_a.clock.now_secs(),
        ctx_s.clock.now_secs()
    );

    // Observability reconciles: one counter tick and one trace event per
    // recorded report, and the ledger matches the per-operator stats.
    assert_eq!(
        ctx_a.tracer.counter("exec.replan"),
        stats_a.adaptive.len() as u64
    );
    let trace = ctx_a.tracer.snapshot().to_jsonl();
    assert_eq!(
        trace.matches("\"replan\"").count(),
        stats_a.adaptive.len(),
        "trace events disagree with reports"
    );
    assert_reconciled(&ctx_s, &stats_s);
    assert_reconciled(&ctx_a, &stats_a);

    // The swap is priced: the report claims the repair was worth it.
    assert!(r.est_suffix_secs_after < r.est_suffix_secs_before);
}

/// Regression (PR 7 satellite): a non-profiled run must not leave a
/// caller-installed retry-wait sink wired into its clones — backoff from
/// an unprofiled execution used to leak into a sink installed for a
/// *previous* profiled run on the same context.
#[test]
fn non_profiled_run_does_not_feed_stale_retry_sink() {
    let mut ctx = ctx_with(brownout(), 0);
    let sink = Arc::new(AtomicU64::new(0));
    ctx.retry_wait_us = Some(sink.clone());
    let (records, _) =
        pz_core::exec::execute_plan(&ctx, &brownout_plan(), ExecutionConfig::sequential()).unwrap();
    assert!(!records.is_empty());
    assert_eq!(
        sink.load(Ordering::Relaxed),
        0,
        "non-profiled run wrote retry backoff into a stale sink"
    );
}
