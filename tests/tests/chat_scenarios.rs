//! Integration: the three SIGMOD'25 demo scenarios driven entirely through
//! the chat interface (abstract: "participants can explore three
//! real-world scenarios — scientific discovery, legal discovery, and real
//! estate search").

use palimpchat::PalimpChat;

#[test]
fn scientific_discovery_scenario() {
    let mut chat = PalimpChat::new();
    chat.handle("load the dataset of scientific papers")
        .unwrap();
    let r = chat
        .handle(
            "I'm interested in papers that are about colorectal cancer, and for these papers, \
             extract whatever public dataset is used by the study",
        )
        .unwrap();
    assert_eq!(
        r.trace.tools_used(),
        vec!["add_filter", "create_schema", "add_convert"]
    );
    let r = chat
        .handle("run the pipeline with maximum quality")
        .unwrap();
    assert!(r.reply.contains("output record"), "{}", r.reply);

    let state = chat.session().lock();
    let outcome = state.last_outcome.as_ref().unwrap();
    assert!((4..=8).contains(&outcome.records.len()));
    // Every extracted record carries a URL field (possibly null on weak
    // extractions, but the schema must be applied).
    for rec in &outcome.records {
        assert!(rec.fields.contains_key("url"));
        assert!(rec.fields.contains_key("name"));
    }
}

#[test]
fn legal_discovery_scenario() {
    let mut chat = PalimpChat::new();
    chat.handle("load the legal discovery emails").unwrap();
    let r = chat
        .handle(
            "I'm interested in emails discussing the acme initech merger and extract the \
             sender, date and subject of each email",
        )
        .unwrap();
    assert_eq!(
        r.trace.tools_used(),
        vec!["add_filter", "create_schema", "add_convert"]
    );
    chat.handle("run the pipeline with minimum cost").unwrap();
    let state = chat.session().lock();
    let outcome = state.last_outcome.as_ref().unwrap();
    // The demo corpus has 5 responsive mails of 12; MinCost plans are noisy
    // but should keep a plausible subset.
    assert!(!outcome.records.is_empty());
    assert!(outcome.records.len() <= 12);
    for rec in &outcome.records {
        assert!(rec.fields.contains_key("sender"));
        assert!(rec.fields.contains_key("subject"));
    }
    assert!(outcome.stats.total_cost_usd < 0.05, "MinCost stayed cheap");
}

#[test]
fn real_estate_scenario() {
    let mut chat = PalimpChat::new();
    chat.handle("load the real estate listings").unwrap();
    let r = chat
        .handle("keep only the listings that describe modern homes with a garden")
        .unwrap();
    assert_eq!(r.trace.tools_used(), vec!["add_filter"]);
    chat.handle("run the pipeline with maximum quality")
        .unwrap();
    let state = chat.session().lock();
    let outcome = state.last_outcome.as_ref().unwrap();
    let (_, truth) = pz_datagen::realestate::demo_corpus();
    let expected = truth.matching_count();
    // High-quality filter should land near the true match count.
    let got = outcome.records.len();
    assert!(
        (got as i64 - expected as i64).unsigned_abs() <= 2,
        "got {got}, truth {expected}"
    );
}

#[test]
fn switching_datasets_resets_the_pipeline() {
    let mut chat = PalimpChat::new();
    chat.handle("load the dataset of scientific papers")
        .unwrap();
    chat.handle("keep only papers about colorectal cancer")
        .unwrap();
    assert_eq!(chat.session().lock().pending_ops.len(), 1);
    // Loading another dataset clears the half-built pipeline.
    chat.handle("load the real estate listings").unwrap();
    assert!(chat.session().lock().pending_ops.is_empty());
    assert_eq!(
        chat.session().lock().dataset.as_deref(),
        Some("realestate-demo")
    );
}

#[test]
fn full_dialogue_notebook_accumulates_all_artifacts() {
    let mut chat = PalimpChat::new();
    for turn in [
        "load the dataset of scientific papers",
        "I'm interested in papers about colorectal cancer and extract the datasets used",
        "run the pipeline with minimum cost",
    ] {
        chat.handle(turn).unwrap();
    }
    let state = chat.session().lock();
    let code = state.notebook.code();
    // Registration cell + filter cell + schema cell + convert cell +
    // pipeline cell all present.
    assert!(code.contains("pz.Dataset(source="));
    assert!(code.contains("dataset.filter("));
    assert!(code.contains("type(class_name, (pz.Schema,), schema)"));
    assert!(code.contains("Execute(output, policy=policy)"));
    // And an Output cell with the Figure 5 table.
    assert!(state
        .notebook
        .cells
        .iter()
        .any(|c| c.kind == palimpchat::CellKind::Output && c.source.contains("TOTAL")));
}
