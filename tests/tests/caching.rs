//! Integration: the response cache across whole pipeline executions.

use pz_core::prelude::*;
use pz_datagen::science;
use std::sync::Arc;

fn cached_ctx() -> PzContext {
    let ctx = PzContext::simulated().with_cache();
    let (docs, _) = science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    ctx
}

fn filter_plan() -> LogicalPlan {
    Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .build()
        .unwrap()
}

#[test]
fn rerunning_an_unchanged_pipeline_is_free() {
    let ctx = cached_ctx();
    let o1 = execute(
        &ctx,
        &filter_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let cost_after_first = ctx.ledger.total_cost_usd();
    let o2 = execute(
        &ctx,
        &filter_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert_eq!(o1.records.len(), o2.records.len());
    // The second run hit only the cache: no new ledger charges.
    assert!((ctx.ledger.total_cost_usd() - cost_after_first).abs() < 1e-12);
    assert!(o2.stats.total_cost_usd < 1e-12);
    let stats = ctx.cache.as_ref().unwrap().stats();
    assert!(stats.completion_hits >= 11, "{stats:?}");
}

#[test]
fn sentinel_plus_execution_share_the_cache() {
    // Sentinel calibration runs the champion on sample records; when the
    // full MaxQuality execution later issues the same prompts, they are
    // free. (Standard-effort sentinel vs high-effort execution differ, so
    // only the standard-effort champion calls overlap — use a plan whose
    // chosen physical op matches the sentinel's standard effort.)
    let ctx = cached_ctx();
    pz_core::optimizer::sentinel::calibrate(&ctx, &filter_plan(), 11).unwrap();
    let misses_after_sentinel = ctx.cache.as_ref().unwrap().stats().completion_misses;
    // Execute with the same physical config the sentinel used.
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "sigmod-demo".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: pz_llm::protocol::Effort::Standard,
            },
        ],
    };
    pz_core::exec::execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap();
    let stats = ctx.cache.as_ref().unwrap().stats();
    assert_eq!(
        stats.completion_misses, misses_after_sentinel,
        "execution should not re-pay for prompts the sentinel already issued"
    );
    assert!(stats.completion_hits >= 11);
}

#[test]
fn cache_disabled_by_default() {
    let ctx = PzContext::simulated();
    assert!(ctx.cache.is_none());
}

#[test]
fn parallel_workers_share_one_cache() {
    let ctx = cached_ctx();
    execute(
        &ctx,
        &filter_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::parallel(4),
    )
    .unwrap();
    let cost_after_first = ctx.ledger.total_cost_usd();
    execute(
        &ctx,
        &filter_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::parallel(4),
    )
    .unwrap();
    assert!((ctx.ledger.total_cost_usd() - cost_after_first).abs() < 1e-12);
}
