//! Integration: logical rewrites preserve results and cut cost.

use pz_core::prelude::*;
use pz_datagen::science;
use std::sync::Arc;

fn science_ctx() -> PzContext {
    let ctx = PzContext::simulated();
    let (docs, _) = science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    // A free predicate that drops more than half the corpus: only papers
    // with an even index survive.
    ctx.udfs.register_filter("even_papers", |r: &DataRecord| {
        r.get("filename")
            .and_then(|v| v.as_text())
            .and_then(|f| {
                f.trim_end_matches(".pdf")
                    .rsplit('-')
                    .next()?
                    .parse::<u32>()
                    .ok()
            })
            .is_some_and(|n| n % 2 == 0)
    });
    ctx
}

#[test]
fn reordered_plan_same_records_lower_cost() {
    // User writes the expensive filter first; the rewriter runs the free
    // UDF first, so the LLM filter sees fewer records.
    let user_plan = Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .filter_udf("even_papers")
        .build()
        .unwrap();

    let ctx1 = science_ctx();
    let optimized = execute(
        &ctx1,
        &user_plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert_eq!(optimized.report.rewrites.filters_reordered, 1);
    // The chosen physical plan has the UDF filter before the LLM filter.
    let desc = optimized.chosen_plan.describe();
    let udf_pos = desc.find("UDFFilter").expect("udf in plan");
    let llm_pos = desc.find("LLMFilter").expect("llm in plan");
    assert!(udf_pos < llm_pos, "{desc}");

    // Execute the un-rewritten order directly for comparison.
    let ctx2 = science_ctx();
    let manual = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "sigmod-demo".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "gpt-4o".into(),
                effort: pz_llm::protocol::Effort::High,
            },
            PhysicalOp::UdfFilter {
                udf: "even_papers".into(),
            },
        ],
    };
    let (manual_records, manual_stats) =
        pz_core::exec::execute_plan(&ctx2, &manual, ExecutionConfig::sequential()).unwrap();

    // Same output set (filters commute)...
    let ids = |rs: &[DataRecord]| {
        let mut v: Vec<String> = rs
            .iter()
            .map(|r| r.get("filename").unwrap().as_display())
            .collect();
        v.sort();
        v
    };
    assert_eq!(ids(&optimized.records), ids(&manual_records));
    // ...at strictly lower cost (the LLM only judged the surviving half).
    assert!(
        optimized.stats.total_cost_usd < manual_stats.total_cost_usd * 0.7,
        "optimized {} vs manual {}",
        optimized.stats.total_cost_usd,
        manual_stats.total_cost_usd
    );
}

#[test]
fn duplicate_filters_run_once() {
    let ctx = science_ctx();
    let plan = Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .filter(science::FILTER_PREDICATE)
        .build()
        .unwrap();
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert_eq!(outcome.report.rewrites.filters_deduped, 1);
    // Only one filter row in the stats (scan + filter).
    assert_eq!(outcome.stats.operators.len(), 2);
}
