//! Integration: Beaker-style notebook state and Figure 6 code generation
//! across a chat session.

use palimpchat::{CellKind, PalimpChat};

fn run_demo_dialogue() -> PalimpChat {
    let mut chat = PalimpChat::new();
    for turn in [
        "load the dataset of scientific papers",
        "I'm interested in papers that are about colorectal cancer, and for these papers, \
         extract whatever public dataset is used by the study",
        "run the pipeline with maximum quality",
    ] {
        chat.handle(turn).unwrap();
    }
    chat
}

#[test]
fn exported_notebook_is_valid_nbformat_json() {
    let chat = run_demo_dialogue();
    let state = chat.session().lock();
    let json = state.notebook.to_json();
    assert_eq!(json["nbformat"], 4);
    let cells = json["cells"].as_array().unwrap();
    assert!(cells.len() >= 5, "{} cells", cells.len());
    // Round-trips through serde.
    let s = serde_json::to_string(&json).unwrap();
    let back: serde_json::Value = serde_json::from_str(&s).unwrap();
    assert_eq!(back, json);
}

#[test]
fn figure6_landmarks_in_generated_code() {
    let chat = run_demo_dialogue();
    let state = chat.session().lock();
    let code = state.notebook.code();
    for landmark in [
        "pz.Dataset(source=\"scientific-demo\", schema=PDFFile)",
        "dataset.filter(",
        "class_name = \"ClinicalData\"",
        "pz.Field(desc=",
        "type(class_name, (pz.Schema,), schema)",
        "cardinality=pz.Cardinality.ONE_TO_MANY",
        "policy = pz.MaxQuality()",
        "records, execution_stats = Execute(output, policy=policy)",
    ] {
        assert!(
            code.contains(landmark),
            "missing Figure 6 landmark: {landmark}\n{code}"
        );
    }
}

#[test]
fn snapshot_restore_supports_iteration() {
    // §2.3: "comprehensive state management that allows users to restore
    // previous notebook states."
    let chat = run_demo_dialogue();
    let mut state = chat.session().lock();
    let before = state.notebook.len();
    let snap = state.notebook.snapshot();
    state.notebook.push_code("experimental_cell = True");
    assert_eq!(state.notebook.len(), before + 1);
    assert!(state.notebook.restore(snap));
    assert_eq!(state.notebook.len(), before);
}

#[test]
fn output_cells_carry_figure5_statistics() {
    let chat = run_demo_dialogue();
    let state = chat.session().lock();
    let outputs: Vec<&str> = state
        .notebook
        .cells
        .iter()
        .filter(|c| c.kind == CellKind::Output)
        .map(|c| c.source.as_str())
        .collect();
    assert!(!outputs.is_empty());
    let table = outputs.last().unwrap();
    assert!(table.contains("operator"));
    assert!(table.contains("cost($)"));
    assert!(table.contains("TOTAL"));
}

#[test]
fn export_tool_writes_readable_file() {
    let mut chat = run_demo_dialogue();
    let path = std::env::temp_dir().join(format!("it-nb-{}.json", std::process::id()));
    let turn = format!("export the notebook to \"{}\"", path.display());
    // The planner does not parse paths from quotes for export; call the
    // tool directly to test the file path branch end to end.
    let session = chat.session().clone();
    let tool = palimpchat::tools::export_notebook_tool(session);
    let mut args = archytas::tool::ToolArgs::new();
    args.insert("path".into(), serde_json::json!(path.to_str().unwrap()));
    tool.invoke(&args).unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    let json: serde_json::Value = serde_json::from_str(&content).unwrap();
    assert_eq!(json["nbformat"], 4);
    std::fs::remove_file(&path).unwrap();
    // The chat path still answers something sensible for the export turn.
    let r = chat.handle(&turn).unwrap();
    assert!(r.trace.tools_used().contains(&"export_notebook"));
}
