//! Integration: failure handling — transient provider errors with retry,
//! context-window pressure, and agent-level error recovery.

use pz_core::prelude::*;
use pz_datagen::science;
use pz_llm::SimConfig;
use std::sync::Arc;

fn ctx_with_failures(rate: f64) -> PzContext {
    let ctx = PzContext::simulated_with(SimConfig {
        transient_failure_rate: rate,
        ..Default::default()
    });
    let (docs, _) = science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    ctx
}

fn demo_plan() -> LogicalPlan {
    let clinical = Schema::new(
        "ClinicalData",
        "datasets",
        vec![
            FieldDef::text("name", "The dataset name"),
            FieldDef::text("url", "The public URL of the dataset"),
        ],
    )
    .unwrap();
    Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical, Cardinality::OneToMany, "extract")
        .build()
        .unwrap()
}

#[test]
fn pipeline_survives_transient_failures_via_retry() {
    // 20% failure rate: with 5 attempts the chance any call exhausts its
    // retries is ~3e-4 per call; the retry policy must absorb it.
    let mut ctx = ctx_with_failures(0.2);
    ctx.retry = pz_llm::RetryPolicy {
        max_attempts: 5,
        ..Default::default()
    };
    let outcome = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert!(!outcome.records.is_empty());
    // Retries charge backoff time on the virtual clock.
    assert!(outcome.stats.total_time_secs > 0.0);
}

#[test]
fn overwhelming_failure_rate_surfaces_an_error() {
    let ctx = ctx_with_failures(1.0);
    let err = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap_err();
    // The executor wraps the transient error with the failing operator.
    let msg = err.to_string();
    assert!(msg.contains("transient provider error"), "{msg}");
    assert!(msg.contains("operator LLMFilter"), "{msg}");
}

#[test]
fn streaming_pipeline_recovers_from_transient_failures_mid_stream() {
    // Same 20% transient rate, but with stages running concurrently:
    // every mid-stream failure must still route through RetryPolicy, and
    // the billed work must match a materializing run (failed attempts are
    // never billed, successful calls are content-keyed). The failure draw
    // is keyed on a global call counter, which thread interleaving
    // reorders — 8 attempts make retry exhaustion vanishingly unlikely
    // under any schedule (0.2^8 per call).
    let mk = || {
        let mut ctx = ctx_with_failures(0.2);
        ctx.retry = pz_llm::RetryPolicy {
            max_attempts: 8,
            ..Default::default()
        };
        ctx
    };
    let ctx_m = mk();
    let m = execute(
        &ctx_m,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let ctx_s = mk();
    let s = execute(
        &ctx_s,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::streaming(),
    )
    .unwrap();
    assert!(!s.records.is_empty());
    assert_eq!(m.records.len(), s.records.len());
    let names = |o: &pz_core::ExecutionOutcome| {
        let mut v: Vec<String> = o
            .records
            .iter()
            .filter_map(|r| r.get("name").map(|x| x.as_display()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(names(&m), names(&s));
    assert!((ctx_m.ledger.total_cost_usd() - ctx_s.ledger.total_cost_usd()).abs() < 1e-9);
}

#[test]
fn streaming_fatal_error_cancels_upstream_without_deadlock() {
    let ctx = ctx_with_failures(1.0);
    let err = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::streaming(),
    )
    .unwrap_err();
    // The first stage error is surfaced with its operator context, exactly
    // as in materializing mode.
    let msg = err.to_string();
    assert!(msg.contains("transient provider error"), "{msg}");
    assert!(msg.contains("operator LLMFilter"), "{msg}");
    // The pipeline drained instead of hanging or grinding on: the virtual
    // clock only paid for the bounded burst of in-flight retries, not for
    // the whole corpus failing at every stage.
    assert!(
        ctx.clock.now_secs() < 3_600.0,
        "virtual clock ran to {}s — upstream cancellation failed",
        ctx.clock.now_secs()
    );
}

#[test]
fn small_window_models_truncate_but_still_extract() {
    // Force the 8k-window model on ~4k-token papers at high effort — the
    // head+tail truncation must keep both topic words and the trailing
    // data-availability section usable.
    let ctx = ctx_with_failures(0.0);
    let clinical = Schema::new(
        "ClinicalData",
        "datasets",
        vec![
            FieldDef::text("name", "The dataset name"),
            FieldDef::text("url", "The public URL of the dataset"),
        ],
    )
    .unwrap();
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "sigmod-demo".into(),
            },
            PhysicalOp::LlmFilter {
                predicate: science::FILTER_PREDICATE.into(),
                model: "llama-3-70b".into(),
                effort: pz_llm::protocol::Effort::Standard,
            },
            PhysicalOp::LlmConvert {
                target: clinical,
                cardinality: Cardinality::OneToMany,
                description: "extract".into(),
                model: "llama-3-70b".into(),
                effort: pz_llm::protocol::Effort::Standard,
            },
        ],
    };
    let (records, stats) =
        pz_core::exec::execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap();
    assert!(stats.total_llm_calls > 0);
    // Extraction still finds datasets despite truncation.
    let with_url = records
        .iter()
        .filter(|r| r.get("url").is_some_and(|v| !v.is_null()))
        .count();
    assert!(
        with_url >= 2,
        "only {with_url} records kept a URL after truncation"
    );
}

#[test]
fn chat_reports_tool_failures_without_crashing() {
    let mut chat = palimpchat::PalimpChat::new();
    // Convert without a schema: the tool errors, the agent observes it.
    chat.handle("load the dataset of scientific papers")
        .unwrap();
    let r = chat.handle("show me the extracted records").unwrap();
    assert!(r.trace.steps.iter().any(|s| s.failed));
    assert!(
        r.reply.contains("failed") || r.reply.contains("no pipeline"),
        "{}",
        r.reply
    );
    // The session is still usable afterwards.
    let r2 = chat
        .handle("keep only papers about colorectal cancer")
        .unwrap();
    assert!(!r2.trace.steps.iter().any(|s| s.failed));
}

#[test]
fn bad_tool_arguments_are_rejected_cleanly() {
    use archytas::tool::ToolArgs;
    let session = palimpchat::session::new_session();
    let tool = palimpchat::tools::create_schema_tool(session);
    let mut args = ToolArgs::new();
    args.insert("schema_name".into(), serde_json::json!("X"));
    args.insert("field_names".into(), serde_json::json!([1, 2, 3])); // not strings
    let err = tool.invoke(&args).unwrap_err();
    assert!(
        err.to_string().contains("expected list of strings"),
        "{err}"
    );
}
