//! Multi-tenant serving: differential isolation, quota enforcement,
//! breaker isolation, shared-cache audit, and overload shedding.
//!
//! The load-bearing property is *isolation*: per-tenant outputs and
//! ledgers under N-tenant concurrent serving must match each tenant's
//! solo run — token and request counts byte-identical, cost within one
//! f64 ulp-accumulation tolerance (concurrent sessions of one tenant sum
//! the same per-call costs in a different order). A shared response cache
//! may only ever *reduce* a tenant's cost, never shift spend between
//! tenants; one tenant's fault storm must trip only its own breakers; and
//! under overload the host sheds with structured errors instead of
//! hanging or degrading everyone.

mod common;

use common::multiset;
use pz_core::dataset::Dataset;
use pz_core::exec::ExecutionConfig;
use pz_core::prelude::*;
use pz_datagen::traffic::{self, TrafficConfig};
use pz_llm::{BreakerState, FaultPlan, Quota};
use pz_serve::{AdmissionConfig, ServeConfig, ServeHost, SessionJob, TenantSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Register a session-private corpus. Every document's content is salted
/// with `salt`: template-generated docs can collide byte-for-byte across
/// seeds, and a collision turns shared-cache hits into an interleaving
/// lottery — salting makes prompt bytes unique per salt, so per-tenant
/// call counts are deterministic. Tests that *want* cross-tenant dedup
/// pass the same salt for both tenants.
fn register_salted(ctx: &PzContext, dataset: &str, salt: &str, seed: u64, n_docs: usize) {
    let (docs, _) = pz_datagen::science::generate(pz_datagen::science::ScienceConfig {
        n_papers: n_docs,
        seed,
        ..Default::default()
    });
    let items: Vec<(String, String)> = docs
        .into_iter()
        .map(|d| (d.filename, format!("{}\n[workspace {salt}]", d.content)))
        .collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        dataset,
        Schema::pdf_file(),
        items,
    )));
}

/// The common case: salt = the dataset name (unique per session).
fn register_corpus(ctx: &PzContext, dataset: &str, seed: u64, n_docs: usize) {
    register_salted(ctx, dataset, dataset, seed, n_docs);
}

fn session_plan(dataset: &str) -> LogicalPlan {
    Dataset::source(dataset)
        .filter("the paper is about colorectal cancer research")
        .build()
        .unwrap()
}

/// Sim seed for a tenant: stable function of its id so solo and concurrent
/// hosts agree.
fn tenant_seed(id: &str) -> u64 {
    1000 + id.bytes().map(u64::from).sum::<u64>()
}

/// Provision `host` with the given slice of a traffic plan and build its
/// session jobs. Deadlines are only attached when `use_deadlines` — the
/// parity tests keep them off because concurrent neighbors advance the
/// shared clock, which would make deadline hits themselves load-dependent.
fn provision(
    host: &mut ServeHost,
    tenants: &[traffic::TenantTraffic],
    use_deadlines: bool,
) -> Vec<SessionJob> {
    let mut jobs = Vec::new();
    for t in tenants {
        host.add_tenant(
            TenantSpec::new(&t.id)
                .with_weight(t.weight)
                .with_seed(tenant_seed(&t.id)),
        );
        let ctx = host.session_ctx(&t.id).unwrap();
        for s in &t.sessions {
            register_corpus(&ctx, &s.session, s.corpus_seed, s.n_docs);
            let mut job = SessionJob::new(&t.id, &s.session, session_plan(&s.session));
            if use_deadlines {
                if let Some(d) = s.deadline_secs {
                    job = job.with_config(ExecutionConfig::sequential().with_deadline(d));
                }
            }
            if !t.interactive {
                job = job.batch();
            }
            jobs.push(job);
        }
    }
    jobs
}

/// Admission roomy enough that nothing queues or sheds.
fn open_admission(slots: usize) -> ServeConfig {
    ServeConfig {
        admission: AdmissionConfig {
            max_concurrent_runs: slots,
            max_queued: slots * 4,
            expected_run_secs: 30.0,
        },
        shared_cache: true,
    }
}

/// Per-tenant ledger fingerprint with integer fields exact.
fn ledger_key(ctx: &PzContext) -> (usize, usize, f64) {
    (
        ctx.ledger.total_requests(),
        ctx.ledger.total_usage().total_tokens(),
        ctx.ledger.total_cost_usd(),
    )
}

/// Requests and tokens must match exactly; cost is the same multiset of
/// per-call f64s summed in session-interleaving order, so it is compared
/// to one accumulation ulp.
fn assert_ledger_parity(got: (usize, usize, f64), want: (usize, usize, f64), who: &str) {
    assert_eq!(got.0, want.0, "{who} request count shifted");
    assert_eq!(got.1, want.1, "{who} token count shifted");
    assert!(
        (got.2 - want.2).abs() < 1e-9,
        "{who} cost shifted: {} vs {}",
        got.2,
        want.2
    );
}

/// Per-session output multisets from a serve report.
fn outputs_by_session(report: &pz_serve::ServeReport) -> BTreeMap<String, Vec<String>> {
    report
        .outcomes
        .iter()
        .map(|o| {
            let recs = &o
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("session {} failed: {e}", o.session))
                .records;
            (o.session.clone(), multiset(recs))
        })
        .collect()
}

/// The tentpole differential test: N tenants served concurrently produce,
/// per tenant, the same outputs and the same bill as each tenant served
/// alone. Completion of the serve() calls doubles as the no-hang check.
#[test]
fn concurrent_serving_matches_solo_runs_per_tenant() {
    let plan = traffic::generate(TrafficConfig {
        tenants: 3,
        sessions_per_tenant: 2,
        interactive_fraction: 0.4,
        docs_per_session: 4,
        ..Default::default()
    });
    let n_jobs = plan.total_sessions();

    // Concurrent: all tenants on one host.
    let mut host = ServeHost::new(open_admission(n_jobs));
    let jobs = provision(&mut host, &plan.tenants, false);
    let report = host.serve(jobs);
    assert_eq!(report.metrics.sessions_completed, n_jobs);
    assert_eq!(report.metrics.sessions_shed, 0);
    let concurrent_outputs = outputs_by_session(&report);

    // Solo: each tenant alone on a fresh host.
    for t in &plan.tenants {
        let mut solo = ServeHost::new(open_admission(t.sessions.len()));
        let jobs = provision(&mut solo, std::slice::from_ref(t), false);
        let solo_report = solo.serve(jobs);
        let solo_outputs = outputs_by_session(&solo_report);
        for (session, out) in &solo_outputs {
            assert_eq!(
                concurrent_outputs.get(session),
                Some(out),
                "session {session} output diverged under concurrency"
            );
        }
        let (solo_reqs, solo_toks, solo_cost) = ledger_key(&solo.tenant(&t.id).unwrap().ctx);
        let (con_reqs, con_toks, con_cost) = ledger_key(&host.tenant(&t.id).unwrap().ctx);
        assert_eq!(con_reqs, solo_reqs, "tenant {} request count shifted", t.id);
        assert_eq!(con_toks, solo_toks, "tenant {} token count shifted", t.id);
        // Same per-call costs, possibly summed in a different order by
        // concurrent sessions of this tenant.
        assert!(
            (con_cost - solo_cost).abs() < 1e-9,
            "tenant {} cost shifted: {con_cost} vs solo {solo_cost}",
            t.id
        );
    }
    // Scheduler arbitrated every provider call; fairness is perfect when
    // nothing is shed and workloads complete.
    assert!(report.scheduler.granted > 0);
    assert!(
        report.metrics.fairness_jain >= 0.8,
        "{}",
        report.metrics.fairness_jain
    );
}

/// Shared-cache audit, serving edition: two tenants running the
/// *byte-identical* workload with the same sim seed. Run sequentially, the
/// second tenant's calls all hit the first tenant's cached responses: its
/// bill is zero, the first tenant's bill is exactly its solo bill — the
/// hit reduced cost, it did not shift a cent between ledgers.
#[test]
fn shared_cache_dedups_identical_workloads_without_cost_shift() {
    let corpus_seed = 7777u64;
    let build = |host: &mut ServeHost, id: &str| -> SessionJob {
        host.add_tenant(TenantSpec::new(id).with_seed(4242));
        let ctx = host.session_ctx(id).unwrap();
        let ds = format!("{id}-docs");
        // Same salt + seed for every tenant: the workloads must be
        // byte-identical for the shared cache to dedup them.
        register_salted(&ctx, &ds, "shared-workload", corpus_seed, 5);
        SessionJob::new(id, format!("{id}/s0"), session_plan(&ds))
    };

    // Solo baseline for the workload.
    let mut solo = ServeHost::new(open_admission(2));
    let job = build(&mut solo, "solo");
    let out = solo.run_session(job);
    let solo_outputs = multiset(&out.result.as_ref().unwrap().records);
    let (solo_reqs, _, solo_cost) = ledger_key(&solo.tenant("solo").unwrap().ctx);
    assert!(solo_cost > 0.0);

    // Two tenants, shared cache, sequential so the dedup is deterministic.
    let mut host = ServeHost::new(open_admission(2));
    let job_a = build(&mut host, "alpha");
    let job_b = build(&mut host, "beta");
    let out_a = host.run_session(job_a);
    let out_b = host.run_session(job_b);
    assert_eq!(
        multiset(&out_a.result.as_ref().unwrap().records),
        solo_outputs
    );
    assert_eq!(
        multiset(&out_b.result.as_ref().unwrap().records),
        solo_outputs
    );
    let (a_reqs, _, a_cost) = ledger_key(&host.tenant("alpha").unwrap().ctx);
    let (b_reqs, _, b_cost) = ledger_key(&host.tenant("beta").unwrap().ctx);
    assert_eq!(a_reqs, solo_reqs);
    assert_eq!(a_cost, solo_cost, "first tenant pays exactly its solo bill");
    assert_eq!(b_reqs, 0, "second tenant's calls all hit the shared cache");
    assert_eq!(b_cost, 0.0, "cache hits are free, not re-billed");
    // Reduce-only also under true concurrency: neither tenant can ever
    // exceed its solo bill (a racing double-miss just re-pays the solo
    // price for that call).
    let mut chost = ServeHost::new(open_admission(2));
    let ja = build(&mut chost, "alpha");
    let jb = build(&mut chost, "beta");
    let report = chost.serve(vec![ja, jb]);
    assert_eq!(report.metrics.sessions_completed, 2);
    for id in ["alpha", "beta"] {
        let (_, _, cost) = ledger_key(&chost.tenant(id).unwrap().ctx);
        assert!(
            cost <= solo_cost + 1e-9,
            "tenant {id} paid {cost} > solo {solo_cost}"
        );
    }
}

/// Quota enforcement: an over-budget run is truncated with a flagged
/// partial result — billed exactly what ran, never past the cap — and the
/// tenant's next run is refused almost for free.
#[test]
fn quota_exhaustion_truncates_with_flagged_partial_result() {
    // Measure the unquoted bill first.
    let mut probe = ServeHost::new(open_admission(1));
    probe.add_tenant(TenantSpec::new("probe").with_seed(9));
    let ctx = probe.session_ctx("probe").unwrap();
    register_corpus(&ctx, "docs", 321, 8);
    let full = probe.run_session(SessionJob::new("probe", "s0", session_plan("docs")));
    let full_outcome = full.result.unwrap();
    assert!(!full_outcome.stats.quota_exhausted);
    let full_cost = probe.tenant("probe").unwrap().ctx.ledger.total_cost_usd();
    let cap = full_cost / 2.0;

    // Same workload under a budget of half the bill.
    let mut host = ServeHost::new(open_admission(1));
    host.add_tenant(
        TenantSpec::new("capped")
            .with_seed(9)
            .with_quota(Quota::cost_limit(cap)),
    );
    let ctx = host.session_ctx("capped").unwrap();
    register_corpus(&ctx, "docs", 321, 8);
    let out = host.run_session(SessionJob::new("capped", "s0", session_plan("docs")));
    let outcome = out.result.expect("quota truncation is not a failure");
    assert!(
        outcome.stats.quota_exhausted,
        "partial result must be flagged"
    );
    let billed = host.tenant("capped").unwrap().ctx.ledger.total_cost_usd();
    assert!(
        billed <= cap + 1e-9,
        "billed {billed} past the {cap} budget"
    );
    assert!(billed > 0.0, "calls before the refusal are real and billed");
    // Truncated output: the input of the aborted operator (the scanned
    // docs), not a silent empty success.
    assert_eq!(outcome.records.len(), 8);

    // A follow-up run is refused at its first model call: flagged, and
    // the bill does not move.
    let out2 = host.run_session(SessionJob::new("capped", "s1", session_plan("docs")));
    let outcome2 = out2.result.unwrap();
    assert!(outcome2.stats.quota_exhausted);
    let billed2 = host.tenant("capped").unwrap().ctx.ledger.total_cost_usd();
    assert_eq!(billed2, billed, "a refused call must never bill");
}

/// Per-tenant breaker isolation, deterministic edition: tenant A's models
/// are in a scripted full-window outage, so its breakers trip; tenant B
/// runs the identical pipeline shape clean, at exact cost parity with its
/// solo run.
#[test]
fn tenant_outage_trips_only_its_own_breakers() {
    let outage =
        FaultPlan::parse("gpt-4o:outage@0..1000000;gpt-4o-mini:outage@0..1000000", 5).unwrap();
    let build = |host: &mut ServeHost, id: &str, plan: FaultPlan| -> SessionJob {
        host.add_tenant(
            TenantSpec::new(id)
                .with_seed(tenant_seed(id))
                .with_fault_plan(plan),
        );
        let ctx = host.session_ctx(id).unwrap();
        let ds = format!("{id}-docs");
        register_corpus(&ctx, &ds, 2024, 5);
        SessionJob::new(id, format!("{id}/s0"), session_plan(&ds))
    };

    // Solo baseline for B.
    let mut solo = ServeHost::new(open_admission(2));
    let sb = build(&mut solo, "b", FaultPlan::default());
    let solo_out = solo.run_session(sb);
    let solo_outputs = multiset(&solo_out.result.as_ref().unwrap().records);
    let solo_key = ledger_key(&solo.tenant("b").unwrap().ctx);

    // Concurrent: A in outage, B clean.
    let mut host = ServeHost::new(open_admission(2));
    let ja = build(&mut host, "a", outage);
    let jb = build(&mut host, "b", FaultPlan::default());
    let report = host.serve(vec![ja, jb]);
    assert_eq!(
        report.metrics.sessions_completed, 2,
        "failover keeps A alive"
    );

    // A's breakers tripped...
    let a_health = host.tenant("a").unwrap().ctx.health.snapshot();
    let a_trips: u64 = a_health.iter().map(|s| s.trips).sum();
    assert!(
        a_trips >= 1,
        "outage must trip tenant A's breaker: {a_health:?}"
    );
    // ...and A's run came back degraded (failed over off the dead models).
    let a_outcome = report
        .outcomes
        .iter()
        .find(|o| o.tenant == "a")
        .unwrap()
        .result
        .as_ref()
        .unwrap();
    assert!(!a_outcome.stats.degraded.is_empty());

    // B's breakers never moved, and B's run matches solo exactly.
    let b_health = host.tenant("b").unwrap().ctx.health.snapshot();
    for s in &b_health {
        assert_eq!(s.trips, 0, "tenant B breaker moved: {s:?}");
        assert_eq!(s.state, BreakerState::Closed);
    }
    let b_outcome = report
        .outcomes
        .iter()
        .find(|o| o.tenant == "b")
        .unwrap()
        .result
        .as_ref()
        .unwrap();
    assert_eq!(multiset(&b_outcome.records), solo_outputs);
    assert_ledger_parity(
        ledger_key(&host.tenant("b").unwrap().ctx),
        solo_key,
        "tenant B",
    );
}

/// Same isolation property under the E18 brownout plan (stochastic
/// timeouts, p=0.35, 25s stalls): whatever tenant A's retries and
/// failovers do, tenant B stays at byte-exact parity with its solo run.
#[test]
fn e18_brownout_storm_never_leaks_into_neighbor() {
    let brownout = FaultPlan::parse("gpt-4o:timeout@0..1000000000:p=0.35:stall=25", 11).unwrap();
    let build = |host: &mut ServeHost, id: &str, plan: FaultPlan| -> Vec<SessionJob> {
        host.add_tenant(
            TenantSpec::new(id)
                .with_seed(tenant_seed(id))
                .with_fault_plan(plan),
        );
        let ctx = host.session_ctx(id).unwrap();
        (0..2)
            .map(|i| {
                let ds = format!("{id}-docs-{i}");
                // Salt the corpus by tenant too: identical seeds would make
                // A's and B's documents byte-identical, and the shared
                // cache would (legitimately) dedup across tenants — this
                // test wants B's solo bill reproduced exactly.
                register_corpus(&ctx, &ds, 5000 + i + tenant_seed(id), 4);
                SessionJob::new(id, format!("{id}/s{i}"), session_plan(&ds))
            })
            .collect()
    };

    let mut solo = ServeHost::new(open_admission(2));
    let jobs = build(&mut solo, "b", FaultPlan::default());
    let solo_report = solo.serve(jobs);
    let solo_outputs = outputs_by_session(&solo_report);
    let solo_key = ledger_key(&solo.tenant("b").unwrap().ctx);

    let mut host = ServeHost::new(open_admission(4));
    let mut jobs = build(&mut host, "a", brownout);
    jobs.extend(build(&mut host, "b", FaultPlan::default()));
    let report = host.serve(jobs);

    // Every session finished (retry/failover absorb the brownout; nothing
    // hangs), and B is byte-exact against solo.
    assert_eq!(report.metrics.sessions_completed, 4);
    let outputs = outputs_by_session(&report);
    for (session, out) in &solo_outputs {
        assert_eq!(
            outputs.get(session),
            Some(out),
            "B session {session} diverged"
        );
    }
    assert_ledger_parity(
        ledger_key(&host.tenant("b").unwrap().ctx),
        solo_key,
        "tenant B",
    );
    for s in &host.tenant("b").unwrap().ctx.health.snapshot() {
        assert_eq!(s.trips, 0, "B breaker tripped by A's storm: {s:?}");
    }
}

/// Overload: 2× more submissions than the host will hold. The host sheds
/// the excess with structured `Overloaded` errors (bounded queue), every
/// thread returns (no hangs), admitted sessions complete, and the shed
/// errors carry a usable retry-after.
#[test]
fn overload_sheds_with_structured_errors_and_bounded_latency() {
    let mut host = ServeHost::new(ServeConfig {
        admission: AdmissionConfig {
            max_concurrent_runs: 2,
            max_queued: 2,
            expected_run_secs: 30.0,
        },
        shared_cache: true,
    });
    host.add_tenant(TenantSpec::new("t0").with_seed(1));
    host.add_tenant(TenantSpec::new("t1").with_seed(2));
    let mut jobs = Vec::new();
    for (i, id) in ["t0", "t1"].iter().enumerate() {
        let ctx = host.session_ctx(id).unwrap();
        for s in 0..4 {
            let ds = format!("{id}-d{s}");
            register_corpus(&ctx, &ds, (i as u64 + 1) * 100 + s as u64, 3);
            jobs.push(SessionJob::new(
                *id,
                format!("{id}/s{s}"),
                session_plan(&ds),
            ));
        }
    }
    // 8 sessions into 2 slots + 2 queue spots: at least 2 must shed (all 8
    // submit together at the barrier; grants free slots as runs finish, so
    // more than 4 may ultimately complete — but the queue bound guarantees
    // sheds at the initial burst).
    let report = host.serve(jobs);
    assert_eq!(report.outcomes.len(), 8, "every submission returned");
    assert!(
        report.metrics.sessions_shed >= 1,
        "2x overload must shed: {:?}",
        report.admission
    );
    assert!(report.metrics.shed_rate > 0.0);
    for o in &report.outcomes {
        match &o.result {
            Ok(outcome) => assert!(!outcome.stats.quota_exhausted),
            Err(PzError::Overloaded {
                reason,
                retry_after_secs,
            }) => {
                assert!(!reason.is_empty());
                assert!(*retry_after_secs > 0.0);
            }
            Err(e) => panic!("non-structured failure under overload: {e}"),
        }
    }
    // Admitted sessions saw bounded virtual latency (queue wait included):
    // generous bound, but a hang or unbounded queue would blow it.
    assert!(
        report.metrics.p99_latency_secs < 100_000.0,
        "p99 {}",
        report.metrics.p99_latency_secs
    );
    assert!(report.metrics.sessions_completed + report.metrics.sessions_shed == 8);
}

/// Deadline-aware admission: when the predicted queue wait already blows a
/// session's deadline, it is refused immediately with `Overloaded` — not
/// admitted to fail slowly.
#[test]
fn deadline_aware_admission_refuses_unmeetable_sessions() {
    use pz_core::context::AdmissionGate;
    let mut host = ServeHost::new(ServeConfig {
        admission: AdmissionConfig {
            max_concurrent_runs: 1,
            max_queued: 4,
            expected_run_secs: 60.0,
        },
        shared_cache: true,
    });
    host.add_tenant(TenantSpec::new("t").with_seed(3));
    let ctx = host.session_ctx("t").unwrap();
    register_corpus(&ctx, "docs", 42, 3);

    // Hold the only run slot directly, then submit a session whose 5s
    // deadline cannot survive the predicted 60s queue wait.
    let ticket = host.admission().begin(0.0, None).unwrap();
    let out = host.run_session(
        SessionJob::new("t", "tight", session_plan("docs"))
            .with_config(ExecutionConfig::sequential().with_deadline(5.0)),
    );
    assert!(
        out.shed(),
        "expected deadline shed, got {:?}",
        out.result.as_ref().map(|_| ())
    );
    assert!(out.result.unwrap_err().to_string().contains("deadline"));
    assert_eq!(host.admission().stats().shed_deadline, 1);
    host.admission().end(ticket, 0.0);

    // With the slot free the same session is admitted and runs.
    let out = host.run_session(
        SessionJob::new("t", "retry", session_plan("docs"))
            .with_config(ExecutionConfig::sequential().with_deadline(10_000.0)),
    );
    assert!(out.result.is_ok());
}

/// Streaming sessions under a quota propagate the refusal as a structured
/// error (a streaming host flushes what was emitted and surfaces the
/// error; it cannot retroactively truncate), and still never bill past
/// the cap.
#[test]
fn streaming_quota_refusal_is_structured_and_never_overbills() {
    let mut probe = ServeHost::new(open_admission(1));
    probe.add_tenant(TenantSpec::new("p").with_seed(6));
    let ctx = probe.session_ctx("p").unwrap();
    register_corpus(&ctx, "docs", 64, 6);
    probe
        .run_session(
            SessionJob::new("p", "s", session_plan("docs"))
                .with_config(ExecutionConfig::streaming()),
        )
        .result
        .unwrap();
    let full_cost = probe.tenant("p").unwrap().ctx.ledger.total_cost_usd();

    let cap = full_cost / 2.0;
    let mut host = ServeHost::new(open_admission(1));
    host.add_tenant(
        TenantSpec::new("c")
            .with_seed(6)
            .with_quota(Quota::cost_limit(cap)),
    );
    let ctx = host.session_ctx("c").unwrap();
    register_corpus(&ctx, "docs", 64, 6);
    let out = host.run_session(
        SessionJob::new("c", "s", session_plan("docs")).with_config(ExecutionConfig::streaming()),
    );
    let err = out.result.expect_err("streaming surfaces the refusal");
    assert!(
        err.to_string().contains("budget exhausted"),
        "unexpected error: {err}"
    );
    let billed = host.tenant("c").unwrap().ctx.ledger.total_cost_usd();
    assert!(billed <= cap + 1e-9, "billed {billed} past cap {cap}");
}
