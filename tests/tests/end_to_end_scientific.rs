//! Integration: the §3 scientific-discovery pipeline across all layers
//! (datagen → datasource → optimizer → executor → LLM substrate), checked
//! against ground truth.

use pz_core::prelude::*;
use pz_datagen::science;
use pz_datagen::truth::score_dataset_extractions;
use std::sync::Arc;

fn science_ctx() -> (PzContext, science::ScienceTruth) {
    let ctx = PzContext::simulated();
    let (docs, truth) = science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    (ctx, truth)
}

fn clinical() -> Schema {
    Schema::new(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        vec![
            FieldDef::text("name", "The name of the clinical data dataset"),
            FieldDef::text(
                "description",
                "A short description of the content of the dataset",
            ),
            FieldDef::text("url", "The public URL where the dataset can be accessed"),
        ],
    )
    .unwrap()
}

fn demo_plan() -> LogicalPlan {
    Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(
            clinical(),
            Cardinality::OneToMany,
            "extract clinical datasets",
        )
        .build()
        .unwrap()
}

fn f1(records: &[DataRecord], truth: &science::ScienceTruth) -> f64 {
    let predicted: Vec<(Option<String>, Option<String>)> = records
        .iter()
        .map(|r| {
            (
                r.get("name").and_then(|v| v.as_text()).map(String::from),
                r.get("url").and_then(|v| v.as_text()).map(String::from),
            )
        })
        .collect();
    score_dataset_extractions(&predicted, &truth.expected_mentions()).f1
}

#[test]
fn max_quality_reproduces_paper_headline() {
    let (ctx, truth) = science_ctx();
    let outcome = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    // Paper: 11 papers in, 6 datasets out, all URLs verified.
    assert_eq!(outcome.stats.operators[0].output_records, 11);
    assert!(
        (5..=7).contains(&outcome.records.len()),
        "{}",
        outcome.records.len()
    );
    assert!(f1(&outcome.records, &truth) >= 0.8);
    // Paper: ~240 s, ~$0.35 — same order of magnitude.
    assert!(
        (50.0..500.0).contains(&outcome.stats.total_time_secs),
        "runtime {}",
        outcome.stats.total_time_secs
    );
    assert!(
        (0.1..1.0).contains(&outcome.stats.total_cost_usd),
        "cost {}",
        outcome.stats.total_cost_usd
    );
}

#[test]
fn policy_tradeoffs_order_correctly() {
    let run = |policy: Policy| {
        let (ctx, truth) = science_ctx();
        let o = execute(&ctx, &demo_plan(), &policy, ExecutionConfig::sequential()).unwrap();
        (
            o.stats.total_cost_usd,
            o.stats.total_time_secs,
            f1(&o.records, &truth),
        )
    };
    let (qc, qt, qf) = run(Policy::MaxQuality);
    let (cc, _ct, cf) = run(Policy::MinCost);
    let (_tc, tt, _tf) = run(Policy::MinTime);
    assert!(cc < qc, "MinCost {cc} must be cheaper than MaxQuality {qc}");
    assert!(tt < qt, "MinTime {tt} must be faster than MaxQuality {qt}");
    assert!(
        qf >= cf,
        "MaxQuality F1 {qf} must be at least MinCost F1 {cf}"
    );
}

#[test]
fn constrained_policy_lands_between_extremes() {
    let (ctx, _) = science_ctx();
    let budgeted = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQualityAtCost(0.05),
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert!(budgeted.estimate.cost_usd <= 0.05);
    let (ctx2, _) = science_ctx();
    let cheapest = execute(
        &ctx2,
        &demo_plan(),
        &Policy::MinCost,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert!(budgeted.estimate.quality >= cheapest.estimate.quality);
}

#[test]
fn parallel_matches_sequential_outputs() {
    let (ctx1, _) = science_ctx();
    let seq = execute(
        &ctx1,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let (ctx2, _) = science_ctx();
    let par = execute(
        &ctx2,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::parallel(4),
    )
    .unwrap();
    let names = |o: &ExecutionOutcome| {
        let mut v: Vec<String> = o
            .records
            .iter()
            .map(|r| r.get("name").map(|x| x.as_display()).unwrap_or_default())
            .collect();
        v.sort();
        v
    };
    assert_eq!(names(&seq), names(&par));
    assert!((seq.stats.total_cost_usd - par.stats.total_cost_usd).abs() < 1e-9);
    assert!(par.stats.total_time_secs < seq.stats.total_time_secs);
}

#[test]
fn deterministic_across_full_reruns() {
    let run = || {
        let (ctx, _) = science_ctx();
        let o = execute(
            &ctx,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        (
            o.records
                .iter()
                .map(|r| r.to_json().to_string())
                .collect::<Vec<_>>(),
            format!("{:.6}", o.stats.total_cost_usd),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn lineage_traces_back_to_source_papers() {
    let (ctx, _) = science_ctx();
    let outcome = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    for r in &outcome.records {
        assert!(
            !r.lineage.is_empty(),
            "extracted record lost its provenance"
        );
    }
}

#[test]
fn conventional_tail_ops_compose_with_semantic_ops() {
    let (ctx, _) = science_ctx();
    let plan = Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical(), Cardinality::OneToMany, "extract")
        .sort("name", false)
        .distinct(&["name"])
        .limit(3)
        .build()
        .unwrap();
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert!(outcome.records.len() <= 3);
    // Sorted ascending by name.
    let names: Vec<String> = outcome
        .records
        .iter()
        .map(|r| r.get("name").unwrap().as_display())
        .collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn aggregation_counts_extractions_per_paper() {
    let (ctx, _) = science_ctx();
    let plan = Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical(), Cardinality::OneToMany, "extract")
        .aggregate(&[], vec![AggExpr::new(AggFunc::Count, "", "n_datasets")])
        .build()
        .unwrap();
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert_eq!(outcome.records.len(), 1);
    let n = outcome.records[0]
        .get("n_datasets")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((4.0..=8.0).contains(&n), "n {n}");
}
