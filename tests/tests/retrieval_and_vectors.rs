//! Integration: the Retrieve operator + vector store + embedding substrate
//! inside full pipelines (the intro's "vector databases" leg).

use pz_core::prelude::*;
use pz_datagen::science::{self, ScienceConfig};
use std::sync::Arc;

fn big_science_ctx(n: usize) -> PzContext {
    let ctx = PzContext::simulated();
    let (docs, _) = science::generate(ScienceConfig {
        n_papers: n,
        ..Default::default()
    });
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sci",
        Schema::pdf_file(),
        items,
    )));
    ctx
}

#[test]
fn retrieve_narrows_before_expensive_filter() {
    let ctx = big_science_ctx(40);
    // RAG-style: semantic top-10 narrowing, then the LLM filter only sees
    // 10 records instead of 40.
    let plan = Dataset::source("sci")
        .retrieve("colorectal cancer tumor genomic mutation", 10)
        .filter(science::FILTER_PREDICATE)
        .build()
        .unwrap();
    let outcome = execute(
        &ctx,
        &plan,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let retrieve_stats = &outcome.stats.operators[1];
    let filter_stats = &outcome.stats.operators[2];
    assert_eq!(retrieve_stats.output_records, 10);
    assert_eq!(
        filter_stats.llm_calls, 10,
        "filter must only see the retrieved subset"
    );
    // Retrieval should be topical: most retrieved records pass the filter.
    assert!(
        filter_stats.output_records >= 5,
        "{}",
        filter_stats.output_records
    );
}

#[test]
fn retrieve_is_cheaper_than_filtering_everything() {
    let ctx1 = big_science_ctx(40);
    let narrowed = Dataset::source("sci")
        .retrieve("colorectal cancer tumor genomic mutation", 10)
        .filter(science::FILTER_PREDICATE)
        .build()
        .unwrap();
    let o1 = execute(
        &ctx1,
        &narrowed,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();

    let ctx2 = big_science_ctx(40);
    let full = Dataset::source("sci")
        .filter(science::FILTER_PREDICATE)
        .build()
        .unwrap();
    let o2 = execute(
        &ctx2,
        &full,
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert!(
        o1.stats.total_cost_usd < o2.stats.total_cost_usd / 2.0,
        "narrowed {} vs full {}",
        o1.stats.total_cost_usd,
        o2.stats.total_cost_usd
    );
}

#[test]
fn vector_store_shared_through_context() {
    use pz_vector::Metric;
    let ctx = big_science_ctx(5);
    ctx.vectors
        .create_collection("notes", 4, Metric::Cosine)
        .unwrap();
    ctx.vectors
        .add("notes", &[1.0, 0.0, 0.0, 0.0], "a")
        .unwrap();
    // Clones of the context observe the same store.
    let clone = ctx.clone();
    assert_eq!(clone.vectors.collection_len("notes").unwrap(), 1);
}

#[test]
fn embedding_filter_agrees_with_topics_at_scale() {
    let ctx = big_science_ctx(60);
    let plan = PhysicalPlan {
        ops: vec![
            PhysicalOp::Scan {
                dataset: "sci".into(),
            },
            PhysicalOp::EmbeddingFilter {
                predicate: "colorectal cancer tumor genomic mutation cohort".into(),
                model: "text-embedding-3-small".into(),
                threshold: 0.30,
            },
        ],
    };
    let (records, stats) =
        pz_core::exec::execute_plan(&ctx, &plan, ExecutionConfig::sequential()).unwrap();
    // Embedding filtering is imperfect but must be topical: the majority of
    // kept records mention colorectal vocabulary.
    let relevant = records
        .iter()
        .filter(|r| r.prompt_text().to_lowercase().contains("colorectal"))
        .count();
    assert!(
        relevant * 2 >= records.len(),
        "{relevant} of {} kept records are on-topic",
        records.len()
    );
    // And it is nearly free compared to LLM filtering.
    assert!(stats.total_cost_usd < 0.01, "{}", stats.total_cost_usd);
}
