//! Integration: the pipeline profiler — byte-invisibility when disarmed,
//! zero perturbation of execution when armed, estimate-vs-observed drift
//! reconciliation, and bucket accounting under worker pools.

use proptest::prelude::*;
use pz_core::prelude::*;
use pz_datagen::science::{self, ScienceConfig};
use std::sync::Arc;

fn science_ctx() -> PzContext {
    let (docs, _truth) = science::demo_corpus();
    ctx_from_docs(docs)
}

fn ctx_from_docs(docs: Vec<pz_datagen::Document>) -> PzContext {
    let ctx = PzContext::simulated();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    ctx
}

fn clinical() -> Schema {
    Schema::new(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        vec![
            FieldDef::text("name", "The name of the clinical data dataset"),
            FieldDef::text("url", "The public URL where the dataset can be accessed"),
        ],
    )
    .unwrap()
}

fn demo_plan() -> LogicalPlan {
    Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical(), Cardinality::OneToMany, "extract datasets")
        .build()
        .unwrap()
}

/// Streaming config matching the E16/E17 experiments: batch size 1 so every
/// record is its own unit of overlap.
fn streaming_cfg(parallelism: usize) -> ExecutionConfig {
    ExecutionConfig::sequential()
        .with_mode(ExecMode::Streaming {
            channel_capacity: 2,
            batch_size: 1,
        })
        .with_parallelism_config(ParallelismConfig::fixed(parallelism))
}

fn record_keys(records: &[DataRecord]) -> Vec<String> {
    let mut keys: Vec<String> = records
        .iter()
        .map(|r| serde_json::to_string(&r.to_json()).unwrap())
        .collect();
    keys.sort();
    keys
}

/// With the profiler disarmed (the default), the trace is byte-identical
/// across runs and contains none of the profiler's artifacts — the gauges
/// are invisible, not merely empty. Byte-identity is asserted on the
/// materializing executor (strictly sequential); streaming stage threads
/// race for the clock gate, so their per-call span interleaving is
/// scheduler-dependent even at parallelism 1 and only the streaming
/// artifact-absence half applies there.
#[test]
fn profiling_off_trace_is_byte_identical_and_artifact_free() {
    let mut traces = Vec::new();
    for _ in 0..2 {
        let ctx = science_ctx();
        assert!(!ctx.tracer.profiling_enabled(), "profiler must default off");
        execute(
            &ctx,
            &demo_plan(),
            &Policy::MaxQuality,
            ExecutionConfig::sequential(),
        )
        .unwrap();
        traces.push(ctx.tracer.snapshot().to_jsonl());
    }
    assert_eq!(
        traces[0], traces[1],
        "disarmed runs must produce bit-identical traces"
    );
    let streaming_trace = {
        let ctx = science_ctx();
        execute(&ctx, &demo_plan(), &Policy::MaxQuality, streaming_cfg(1)).unwrap();
        ctx.tracer.snapshot().to_jsonl()
    };
    for trace in [&traces[0], &streaming_trace] {
        assert!(
            !trace.contains("prof_"),
            "disarmed trace leaked prof_* span attrs"
        );
        assert!(
            !trace.contains("queue_depth"),
            "disarmed trace leaked queue-depth gauges"
        );
    }
}

/// Arming the profiler changes what is *recorded*, never what *runs*:
/// same records, same dollars, same virtual-clock stats.
#[test]
fn armed_profiler_does_not_perturb_execution() {
    let run = |profiling: bool| {
        let ctx = science_ctx();
        ctx.tracer.set_profiling(profiling);
        let outcome = execute(&ctx, &demo_plan(), &Policy::MaxQuality, streaming_cfg(8)).unwrap();
        (
            record_keys(&outcome.records),
            ctx.ledger.total_cost_usd(),
            outcome.stats.total_time_secs,
            ctx.tracer.snapshot(),
        )
    };
    let (keys_off, cost_off, time_off, snap_off) = run(false);
    let (keys_on, cost_on, time_on, snap_on) = run(true);
    assert_eq!(keys_off, keys_on, "profiler changed the output multiset");
    assert!((cost_off - cost_on).abs() < 1e-12, "profiler changed cost");
    assert!(
        (time_off - time_on).abs() < 1e-9,
        "profiler changed virtual time"
    );
    // And the armed run actually recorded the gauges.
    let profile = pz_obs::profile_plan(&snap_on).expect("armed run yields a profile");
    assert_eq!(profile.stages.len(), 3);
    assert!(profile.stages.iter().all(|s| s.window_us > 0));
    assert!(
        !snap_off
            .histograms
            .iter()
            .any(|(name, _)| name.contains("queue_depth")),
        "disarmed run must record no queue-depth gauges"
    );
    assert!(
        snap_on
            .histograms
            .iter()
            .any(|(name, _)| name.contains("queue_depth")),
        "armed run records queue-depth gauges"
    );
}

/// The drift report's per-stage estimate rows are produced by the same
/// pass as the headline plan estimate, so they sum back to it exactly;
/// its observed side is the execution stats verbatim.
#[test]
fn drift_report_reconciles_with_estimate_and_stats() {
    let ctx = science_ctx();
    // Materializing: the headline time estimate is the sum of stages.
    let outcome = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    let drift = outcome.drift_report().expect("estimates were kept");
    assert_eq!(drift.stages.len(), outcome.stats.operators.len());

    let est_cost: f64 = drift.stages.iter().map(|s| s.est_cost_usd).sum();
    assert!(
        (est_cost - outcome.estimate.cost_usd).abs() < 1e-9,
        "per-stage estimated cost must sum to the plan estimate: {est_cost} vs {}",
        outcome.estimate.cost_usd
    );
    let est_time: f64 = drift.stages.iter().map(|s| s.est_time_secs).sum();
    assert!(
        (est_time - outcome.estimate.time_secs).abs() < 1e-9,
        "per-stage estimated time must sum to the plan estimate: {est_time} vs {}",
        outcome.estimate.time_secs
    );
    assert!((drift.obs_total_cost_usd - outcome.stats.total_cost_usd).abs() < 1e-12);
    assert!((drift.obs_total_time_secs - outcome.stats.total_time_secs).abs() < 1e-12);
    for s in &drift.stages {
        assert!(s.time_ratio().is_finite() || s.est_time_secs == 0.0);
        assert!(s.est_selectivity > 0.0);
    }
    // The simulator is the cost model's own ground truth: the LLM stages'
    // estimates should land within an order of magnitude of observation.
    for s in drift.stages.iter().filter(|s| s.is_llm()) {
        let r = s.cost_ratio();
        assert!(
            (0.1..=10.0).contains(&r),
            "stage {} cost drift {r}x is out of band",
            s.index
        );
    }
}

proptest! {
    /// Attribution buckets partition each stage's window exactly — for
    /// any corpus draw and at every worker-pool size the executor
    /// supports (serial, small pool, rate-limit-clamped pool).
    #[test]
    fn buckets_sum_to_stage_window(
        n_papers in 3usize..14,
        seed in 0u64..500,
        pool_pick in 0usize..3,
    ) {
        let parallelism = [1usize, 2, 8][pool_pick];
        let (docs, _truth) = science::generate(ScienceConfig {
            n_papers,
            seed,
            ..Default::default()
        });
        let ctx = ctx_from_docs(docs);
        ctx.tracer.set_profiling(true);
        execute(&ctx, &demo_plan(), &Policy::MinCost, streaming_cfg(parallelism)).unwrap();
        let snap = ctx.tracer.snapshot();
        let profile = pz_obs::profile_plan(&snap).expect("profile");
        prop_assert_eq!(profile.stages.len(), 3);
        for s in &profile.stages {
            prop_assert_eq!(
                s.buckets.total_us(),
                s.window_us,
                "stage {} buckets must partition its window exactly",
                s.index
            );
        }
    }
}
