//! Integration: provider fault domains, circuit breakers, and mid-plan
//! model failover. A scripted `FaultPlan` takes models down on the
//! virtual clock; the executor must route around the outage via the
//! next-best healthy model, keep the ledger exactly reconciled, and — on
//! an empty fault plan — behave byte-identically to a failover-less run.

use pz_core::prelude::*;
use pz_datagen::science;
use pz_llm::{FaultPlan, SimConfig};
use std::sync::Arc;

fn ctx_with_faults(plan: FaultPlan) -> PzContext {
    let ctx = PzContext::simulated_with(SimConfig {
        fault_plan: plan,
        ..Default::default()
    });
    let (docs, _) = science::demo_corpus();
    let items: Vec<(String, String)> = docs.into_iter().map(|d| (d.filename, d.content)).collect();
    ctx.registry.register(Arc::new(MemorySource::new(
        "sigmod-demo",
        Schema::pdf_file(),
        items,
    )));
    ctx
}

fn demo_plan() -> LogicalPlan {
    let clinical = Schema::new(
        "ClinicalData",
        "datasets",
        vec![
            FieldDef::text("name", "The dataset name"),
            FieldDef::text("url", "The public URL of the dataset"),
        ],
    )
    .unwrap();
    Dataset::source("sigmod-demo")
        .filter(science::FILTER_PREDICATE)
        .convert(clinical, Cardinality::OneToMany, "extract")
        .build()
        .unwrap()
}

fn sorted_names(records: &[DataRecord]) -> Vec<String> {
    let mut v: Vec<String> = records
        .iter()
        .map(|r| r.get("name").unwrap().as_display())
        .collect();
    v.sort();
    v
}

/// (operator_index, operator, from, to, records_affected) — the parts of a
/// failover decision both executors must agree on. `reason` and `at_secs`
/// legitimately differ (one mode may see the breaker already open where
/// the other burns the probe itself).
fn decisions(stats: &ExecutionStats) -> Vec<(usize, String, String, String, usize)> {
    stats
        .degraded
        .iter()
        .map(|d| {
            (
                d.operator_index,
                d.operator.clone(),
                d.from_model.clone(),
                d.to_model.clone(),
                d.records_affected,
            )
        })
        .collect()
}

fn assert_reconciled(ctx: &PzContext, stats: &ExecutionStats) {
    let op_cost: f64 = stats.operators.iter().map(|o| o.cost_usd).sum();
    assert!(
        (op_cost - ctx.ledger.total_cost_usd()).abs() < 1e-9,
        "operator cost {} vs ledger {}",
        op_cost,
        ctx.ledger.total_cost_usd()
    );
    let op_calls: usize = stats.operators.iter().map(|o| o.llm_calls).sum();
    assert_eq!(op_calls, ctx.ledger.total_requests());
}

/// The acceptance scenario: the primary model of the demo pipeline goes
/// fully down; both executors must complete via failover, agree on the
/// output multiset, the ledger cost, and the recorded failover decisions,
/// and leave breaker-trip events in the trace.
#[test]
fn full_outage_differential_materializing_vs_streaming() {
    // gpt-4o (MaxQuality's champion) is down for the entire run.
    let outage = FaultPlan::none().outage("gpt-4o", 0.0, 1e9);

    let ctx_m = ctx_with_faults(outage.clone());
    let out_m = execute(
        &ctx_m,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();

    let ctx_s = ctx_with_faults(outage);
    let out_s = execute(
        &ctx_s,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::streaming(),
    )
    .unwrap();

    // The pipeline completed with real output despite the outage.
    assert!(!out_m.records.is_empty());
    assert_eq!(sorted_names(&out_m.records), sorted_names(&out_s.records));

    // Every afflicted operator failed over to the next-best model under
    // MaxQuality, and both modes agree on the decisions.
    assert!(!out_m.stats.degraded.is_empty());
    assert_eq!(decisions(&out_m.stats), decisions(&out_s.stats));
    for d in &out_m.stats.degraded {
        assert_eq!(d.from_model, "gpt-4o");
        assert_eq!(d.to_model, "llama-3-70b");
        assert!(d.est_quality_delta < 0.0);
        assert!(d.records_affected > 0, "{d:?}");
    }

    // Identical cost on the ledger: failed calls bill nothing, and both
    // modes processed the same records on the same substitute model.
    assert!((ctx_m.ledger.total_cost_usd() - ctx_s.ledger.total_cost_usd()).abs() < 1e-9);

    // Stats reconcile exactly with the ledger in both modes.
    assert_reconciled(&ctx_m, &out_m.stats);
    assert_reconciled(&ctx_s, &out_s.stats);

    // Breaker and failover activity is visible in the trace.
    for ctx in [&ctx_m, &ctx_s] {
        assert!(ctx.tracer.counter("llm.breaker_opened") > 0);
        assert!(ctx.tracer.counter("exec.failover") > 0);
        let trace = ctx.tracer.snapshot().to_jsonl();
        assert!(trace.contains("breaker_opened"), "no breaker event");
        assert!(trace.contains("failover"), "no failover event");
    }

    // The run summary surfaces the degradation.
    assert!(out_m.stats.render_table().contains("DEGRADED"));
}

#[test]
fn mid_run_outage_recovers_in_each_mode() {
    // The outage opens a few virtual seconds in: some records are served
    // by the planned model, the remainder by the substitute.
    for config in [ExecutionConfig::sequential(), ExecutionConfig::streaming()] {
        let ctx = ctx_with_faults(FaultPlan::none().outage("gpt-4o", 5.0, 1e9));
        let out = execute(&ctx, &demo_plan(), &Policy::MaxQuality, config).unwrap();
        assert!(!out.records.is_empty(), "{:?}", config.mode);
        assert!(!out.stats.degraded.is_empty(), "{:?}", config.mode);
        assert!(ctx.tracer.counter("llm.breaker_opened") > 0);
        assert_reconciled(&ctx, &out.stats);
    }
}

#[test]
fn empty_fault_plan_matches_failover_less_run_exactly() {
    // With no faults the resilience layer must be invisible: same records,
    // same cost, same clock, no degraded entries, no breaker activity.
    let ctx_a = ctx_with_faults(FaultPlan::none());
    let out_a = execute(
        &ctx_a,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();

    let ctx_b = ctx_with_faults(FaultPlan::none());
    let out_b = execute(
        &ctx_b,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential().without_failover(),
    )
    .unwrap();

    assert_eq!(sorted_names(&out_a.records), sorted_names(&out_b.records));
    assert_eq!(ctx_a.ledger.total_cost_usd(), ctx_b.ledger.total_cost_usd());
    assert_eq!(ctx_a.ledger.total_requests(), ctx_b.ledger.total_requests());
    assert_eq!(ctx_a.clock.now_secs(), ctx_b.clock.now_secs());
    assert!(out_a.stats.degraded.is_empty());
    assert!(!out_a.stats.deadline_exceeded);
    assert_eq!(ctx_a.tracer.counter("llm.breaker_opened"), 0);
    assert_eq!(ctx_a.tracer.counter("exec.failover"), 0);
    // Stats serialize identically (no resilience fields on healthy runs).
    assert_eq!(
        serde_json::to_string(&out_a.stats).unwrap(),
        serde_json::to_string(&out_b.stats).unwrap()
    );
}

#[test]
fn deadline_yields_partial_results_not_a_hang() {
    for config in [
        ExecutionConfig::sequential().with_deadline(1.0),
        ExecutionConfig::streaming().with_deadline(1.0),
    ] {
        let ctx = ctx_with_faults(FaultPlan::none());
        let out = execute(&ctx, &demo_plan(), &Policy::MaxQuality, config).unwrap();
        assert!(out.stats.deadline_exceeded, "{:?}", config.mode);
        assert!(out.stats.render_table().contains("DEADLINE EXCEEDED"));
        assert_reconciled(&ctx, &out.stats);
    }
    // A generous deadline changes nothing.
    let ctx = ctx_with_faults(FaultPlan::none());
    let out = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential().with_deadline(1e9),
    )
    .unwrap();
    assert!(!out.stats.deadline_exceeded);
    assert!(!out.records.is_empty());
}

#[test]
fn rate_limit_hints_extend_breaker_cooldown_but_run_completes() {
    let plan = FaultPlan::none().with_window(pz_llm::FaultWindow {
        model: "gpt-4o".into(),
        start_secs: 0.0,
        end_secs: 1e9,
        kind: pz_llm::FaultKind::RateLimit {
            retry_after_secs: 120.0,
        },
        intensity: 1.0,
    });
    let ctx = ctx_with_faults(plan);
    let out = execute(
        &ctx,
        &demo_plan(),
        &Policy::MaxQuality,
        ExecutionConfig::sequential(),
    )
    .unwrap();
    assert!(!out.records.is_empty());
    assert!(!out.stats.degraded.is_empty());
    assert_reconciled(&ctx, &out.stats);
}

#[test]
fn fault_plan_spec_round_trips_through_context_handle() {
    let ctx = ctx_with_faults(FaultPlan::none());
    assert!(!ctx.faults.is_active());
    let plan =
        FaultPlan::parse("gpt-4o:outage@0..60;llama-3-70b:brownout@10..50:p=0.3", 42).unwrap();
    ctx.faults.set(plan.clone());
    assert!(ctx.faults.is_active());
    assert_eq!(ctx.faults.plan(), plan);
    ctx.faults.clear();
    assert!(!ctx.faults.is_active());
}
