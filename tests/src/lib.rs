//! Shared fixtures for the integration tests (the tests themselves live in
//! `tests/tests/*.rs` and exercise the crates together).
